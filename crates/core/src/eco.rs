//! Incremental (ECO) remapping: an [`EcoSession`] retains per-cone-shape
//! covers, their per-cone hazard-filter counts, and the warm hazard-verdict
//! cache across successive maps of edited designs, so a remap costs time
//! proportional to the *edit*, not the design.
//!
//! # Why shape-keyed reuse is exact
//!
//! The covering DP of a cone consumes nothing but the cone's local gate
//! tree (leaves opaque), the library, the cluster limits and the
//! objective. The last three are fixed for the lifetime of a session, so a
//! cover computed for one cone translates verbatim — positionally, via
//! [`ConeLocalMap`] — to any cone with an equal [`ConeShapeKey`]. The
//! translated cover's instances, area (the same float-addition sequence)
//! and cut-truncation count are bit-identical to what a cold run would
//! compute for that cone, and since `assemble` re-derives delay and
//! buffers from the (freshly decomposed) subject network, the whole
//! remapped design is `design_fingerprint`-identical to a cold map of the
//! edited equations.
//!
//! Hazard-filter counters are part of the fingerprint
//! (`stats.hazard_rejects`), so the session also stores each shape's
//! per-cone `(hazard_checks, hazard_rejects)` — these are
//! shape-deterministic (the match memo stores *pre*-hazard-filter
//! candidate lists, so every cone performs its own checks in a cold run
//! regardless of memo or verdict-cache warmth) and the stitched totals are
//! the per-cone sums, exactly as a cold run accumulates them.
//!
//! The session's first [`EcoSession::map`] call is the base map: every
//! shape misses the store and is covered; duplicate shapes within the run
//! already reuse the first instance's cover (a cold map computes the same
//! cover for each of them independently).

use crate::cover::{cover_cone_with, ConeCover, CoverError, Instance};
use crate::design::{assemble, MapStats, MappedDesign};
use crate::hcache::HazardCache;
use crate::matcher::{HazardPolicy, Matcher, MatcherCounters};
use crate::profile::{self, MapPhase};
use crate::tmap::MapOptions;
use asyncmap_library::Library;
use asyncmap_network::{
    async_tech_decomp, async_tech_decomp_traced, build_partition_dag, cone_shape_key, partition,
    partition_traced, propagate_dirty, Cone, ConeLocalMap, ConeShapeKey, EquationSet, Network,
    ShapeKeyScratch,
};
use std::collections::HashMap;
use std::sync::Arc;

use crate::fxhash::FxBuildHasher;

/// A cover in cone-local coordinates: instance outputs are gate positions,
/// instance inputs are [`ConeLocalMap`] references. Valid for every cone
/// sharing the stored shape key.
#[derive(Debug, Clone)]
struct LocalInstance {
    cell_index: usize,
    /// Position in `Cone::gates` of the signal this instance produces.
    output: u32,
    /// Local references (leaf `i << 1`, gate `(j << 1) | 1`) of the pin
    /// bindings, in pin order.
    inputs: Vec<u32>,
}

#[derive(Debug, Clone)]
struct StoredCover {
    instances: Vec<LocalInstance>,
    area: f64,
    cut_truncations: usize,
    /// Hazard-containment checks a cold covering of this shape performs.
    hazard_checks: usize,
    /// Matches the hazard filter rejects on this shape.
    hazard_rejects: usize,
}

/// Reuse accounting of one [`EcoSession::map`] call, alongside the
/// design's ordinary [`MapStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EcoStats {
    /// Cones in the partition of this map's subject network.
    pub cones_total: usize,
    /// Cones whose cover was served from the shape store.
    pub cones_reused: usize,
    /// Cones actually re-covered (store misses).
    pub cones_remapped: usize,
    /// Cones in the edit's blast radius: store misses plus everything
    /// downstream of them in the partition DAG. Shape-keyed reuse makes
    /// remapping the downstream part unnecessary; this is the honest
    /// measure of how much of the design the edit could have disturbed.
    pub cones_downstream_dirty: usize,
    /// Distinct cone shapes in the session store after this map.
    pub store_entries: usize,
}

/// The result of one incremental remap.
#[derive(Debug)]
pub struct EcoOutcome {
    /// The remapped design — `design_fingerprint`-identical to a cold
    /// `async_tmap` of the same equations.
    pub design: MappedDesign,
    /// Reuse accounting for this map call.
    pub eco: EcoStats,
}

/// An incremental remapping session over one library and one set of
/// mapping options.
///
/// Successive [`EcoSession::map`] calls share the hazard-verdict cache and
/// a store of covers keyed by [`ConeShapeKey`]; only cones whose shape is
/// new since the previous maps are re-covered. Covering runs sequentially
/// (per-cone counter attribution requires it), so `MapOptions::threads` is
/// ignored here — the incremental path's cost is proportional to the edit,
/// where thread-level parallelism has nothing to win.
///
/// Cloning a session deep-copies the cover store but *shares* the
/// hazard-verdict cache (it is behaviorally transparent: warmth changes
/// timing, never results).
#[derive(Debug, Clone)]
pub struct EcoSession<'lib> {
    library: &'lib Library,
    options: MapOptions,
    cache: Arc<HazardCache>,
    // Fx-hashed: shape keys are process-built words, never untrusted
    // input, and every map() probes the store once or twice per cone.
    store: HashMap<ConeShapeKey, StoredCover, FxBuildHasher>,
}

impl<'lib> EcoSession<'lib> {
    /// Creates a session mapping against `library` with `options`.
    pub fn new(library: &'lib Library, options: MapOptions) -> Self {
        EcoSession {
            library,
            options,
            cache: Arc::new(HazardCache::new()),
            store: HashMap::default(),
        }
    }

    /// Number of distinct cone shapes currently stored.
    pub fn store_entries(&self) -> usize {
        self.store.len()
    }

    /// Maps `eqs`, reusing stored covers for every cone whose shape the
    /// session has seen before. The first call is the base map (every
    /// shape is new). The result is bit-identical to a cold
    /// [`crate::async_tmap`] of the same equations under the session's
    /// options.
    ///
    /// Honors the same `ASYNCMAP_LINT` / `ASYNCMAP_AUDIT` hook switches as
    /// [`crate::async_tmap`].
    ///
    /// # Errors
    ///
    /// Returns [`CoverError`] if some gate admits no match.
    ///
    /// # Panics
    ///
    /// Panics if the session's library has not been hazard-annotated, or
    /// if an enabled lint/audit hook reports findings.
    pub fn map(&mut self, eqs: &EquationSet) -> Result<EcoOutcome, CoverError> {
        let phases_before = profile::snapshot();
        let audit = crate::tmap::audit_hook();
        let (subject, dtrace) = {
            let _t = profile::timer(MapPhase::Decompose);
            if audit.is_some() {
                let (net, trace) = async_tech_decomp_traced(eqs);
                (net, Some(trace))
            } else {
                (async_tech_decomp(eqs), None)
            }
        };
        let cones = {
            let _t = profile::timer(MapPhase::Partition);
            partition(&subject)
        };

        // Dirty marking: shape-key every cone into a shared word arena
        // (no per-cone allocation), classify against the store by slice
        // probe, and measure the blast radius over the partition DAG.
        let mut arena: Vec<u32> = Vec::with_capacity(cones.len() * 12);
        let mut ranges: Vec<std::ops::Range<usize>> = Vec::with_capacity(cones.len());
        let downstream_dirty = {
            let _t = profile::timer(MapPhase::DirtyMark);
            let mut scratch = ShapeKeyScratch::new();
            let mut blast: Vec<bool> = Vec::with_capacity(cones.len());
            for cone in &cones {
                let range = scratch.append_key(&subject, cone, &mut arena);
                blast.push(!self.store.contains_key(&arena[range.clone()]));
                ranges.push(range);
            }
            let dag = build_partition_dag(&cones);
            propagate_dirty(&dag, &mut blast);
            blast.iter().filter(|&&d| d).count()
        };

        // Re-cover store misses, sequentially, attributing the matcher's
        // hazard counters to each cone by snapshot/delta. A miss stores its
        // cover immediately, so later cones of the same (new) shape reuse
        // it within this very run.
        let matcher = Matcher::with_cache(
            self.library,
            HazardPolicy::SubsetCheck,
            Arc::clone(&self.cache),
        );
        let matcher_before = matcher.counters();
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let alloc_before = profile::enum_alloc_snapshot();
        let mut remapped = 0usize;
        for (cone, range) in cones.iter().zip(&ranges) {
            let words = &arena[range.clone()];
            if self.store.contains_key(words) {
                continue;
            }
            let before = matcher.counters();
            let cover = cover_cone_with(
                &subject,
                cone,
                &matcher,
                &self.options.limits,
                self.options.objective,
            )?;
            let delta = matcher.counters().delta(&before);
            self.store.insert(
                ConeShapeKey::from_words(words.to_vec()),
                localize(cone, &cover, &delta),
            );
            remapped += 1;
        }

        // One final probe per cone; `stored[i]` serves the stitch pass and
        // the per-cone hazard totals below.
        let stored: Vec<&StoredCover> = ranges
            .iter()
            .map(|range| {
                self.store
                    .get(&arena[range.clone()])
                    .expect("every cone covered or reused")
            })
            .collect();

        // Stitch: translate every cone's stored cover onto this subject
        // network's signals.
        let covers: Vec<ConeCover> = {
            let _t = profile::timer(MapPhase::ReuseStitch);
            cones
                .iter()
                .zip(&stored)
                .map(|(cone, s)| delocalize(cone, s))
                .collect()
        };

        let phases = profile::snapshot().delta(&phases_before);
        profile::maybe_dump(&phases);
        let cut_truncations = covers.iter().map(|c| c.cut_truncations).sum();
        let counters = matcher.counters().delta(&matcher_before);
        let alloc = profile::enum_alloc_snapshot().delta(&alloc_before);
        profile::maybe_dump_counters(
            cut_truncations,
            counters.npn_hits,
            counters.npn_misses,
            &alloc,
        );
        // Hazard totals are the per-cone sums over *all* cones (stored
        // per-shape counts), exactly what a cold sequential run
        // accumulates; cache/memo/alloc counters describe this run's real
        // work and are deltas like everywhere else.
        let stats = MapStats {
            hazard_checks: stored.iter().map(|s| s.hazard_checks).sum(),
            hazard_rejects: stored.iter().map(|s| s.hazard_rejects).sum(),
            cache_hits: self.cache.hits() - hits_before,
            cache_misses: self.cache.misses() - misses_before,
            npn_hits: counters.npn_hits,
            npn_misses: counters.npn_misses,
            cut_truncations,
            enum_warm_cones: alloc.warm_cones as usize,
            enum_alloc_events: alloc.alloc_events as usize,
            cones_reused: cones.len() - remapped,
            cones_remapped: remapped,
            phases,
            ..MapStats::default()
        };
        let eco = EcoStats {
            cones_total: cones.len(),
            cones_reused: cones.len() - remapped,
            cones_remapped: remapped,
            cones_downstream_dirty: downstream_dirty,
            store_entries: self.store.len(),
        };
        let mut design = assemble(
            self.library,
            subject,
            cones,
            covers,
            stats,
            self.options.add_buffers,
        );
        crate::tmap::post_map_check(&design, self.library);
        crate::tmap::post_analyze_check(&mut design, self.library);
        if let (Some(hook), Some(dtrace)) = (audit, dtrace) {
            let (cones, ptrace) = partition_traced(&design.subject);
            match hook(eqs, &design.subject, &dtrace, &cones, &ptrace) {
                Ok(certificates) => design.stats.audit_certificates = certificates,
                Err(report) => panic!("ASYNCMAP_AUDIT=1: transformation audit failed\n{report}"),
            }
        }
        Ok(EcoOutcome { design, eco })
    }
}

fn localize(cone: &Cone, cover: &ConeCover, counters: &MatcherCounters) -> StoredCover {
    let map = ConeLocalMap::new(cone);
    let instances = cover
        .instances
        .iter()
        .map(|inst| LocalInstance {
            cell_index: inst.cell_index,
            output: map
                .gate_pos(inst.output)
                .unwrap_or_else(|| panic!("instance output {} not a cone gate", inst.output)),
            inputs: inst
                .inputs
                .iter()
                .map(|&s| {
                    map.local_ref(s)
                        .unwrap_or_else(|| panic!("pin binding {s} escapes the cone"))
                })
                .collect(),
        })
        .collect();
    StoredCover {
        instances,
        area: cover.area,
        cut_truncations: cover.cut_truncations,
        hazard_checks: counters.hazard_checks,
        hazard_rejects: counters.hazard_rejects,
    }
}

/// Encodes a cone and its cover into reuse-cache key words: the cone's
/// canonical shape words extended with the reported area and every
/// instance rewritten into the cone's local space. Two cones with equal
/// words are indistinguishable to any per-cone analysis (equal local gate
/// tree, equal local cover, equal area), so a verdict computed for one
/// transfers to the other verbatim — the reuse argument behind both the
/// lint cache and the fundamental-mode analyzer's cache.
///
/// Returns `None` when some instance binds a signal outside the cone —
/// such a cover's meaning depends on foreign signals the key cannot
/// capture, so it must not be cached (the per-cone walks diagnose it).
pub fn cone_cover_words(net: &Network, cone: &Cone, cover: &ConeCover) -> Option<Vec<u32>> {
    let local = ConeLocalMap::new(cone);
    let mut words = cone_shape_key(net, cone).into_inner();
    let area = cover.area.to_bits();
    words.push((area >> 32) as u32);
    words.push(area as u32);
    words.push(local.local_ref(cover.root)?);
    words.push(u32::try_from(cover.instances.len()).ok()?);
    for inst in &cover.instances {
        words.push(u32::try_from(inst.cell_index).ok()?);
        words.push(local.local_ref(inst.output)?);
        words.push(u32::try_from(inst.inputs.len()).ok()?);
        for &input in &inst.inputs {
            words.push(local.local_ref(input)?);
        }
    }
    Some(words)
}

fn delocalize(cone: &Cone, stored: &StoredCover) -> ConeCover {
    ConeCover {
        root: cone.root,
        instances: stored
            .instances
            .iter()
            .map(|li| Instance {
                cell_index: li.cell_index,
                output: cone.gates[li.output as usize],
                inputs: li
                    .inputs
                    .iter()
                    .map(|&r| ConeLocalMap::resolve(cone, r))
                    .collect(),
            })
            .collect(),
        area: stored.area,
        cut_truncations: stored.cut_truncations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_tmap;
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_library::builtin;

    fn fingerprint(d: &MappedDesign) -> (u64, u64, usize, usize) {
        (
            d.area.to_bits(),
            d.delay.to_bits(),
            d.covers.iter().map(|c| c.instances.len()).sum(),
            d.stats.hazard_rejects,
        )
    }

    fn eqs_of(pairs: &[(&str, &str)], names: &[&str]) -> EquationSet {
        let vars = VarTable::from_names(names.iter().copied());
        let equations = pairs
            .iter()
            .map(|(n, t)| ((*n).to_owned(), Cover::parse(t, &vars).unwrap()))
            .collect();
        EquationSet::new(vars, equations)
    }

    fn seq_options() -> MapOptions {
        MapOptions {
            threads: 1,
            ..MapOptions::default()
        }
    }

    #[test]
    fn base_map_matches_cold_map() {
        let mut lib = builtin::lsi9k();
        lib.annotate_hazards();
        let eqs = eqs_of(
            &[("f", "ab + a'c + bc"), ("g", "a'd + bc'd")],
            &["a", "b", "c", "d"],
        );
        let cold = async_tmap(&eqs, &lib, &seq_options()).unwrap();
        let mut session = EcoSession::new(&lib, seq_options());
        let out = session.map(&eqs).unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&out.design));
        assert_eq!(cold.stats.hazard_checks, out.design.stats.hazard_checks);
        assert_eq!(out.eco.cones_total, cold.stats.cones);
        assert_eq!(
            out.eco.cones_reused + out.eco.cones_remapped,
            out.eco.cones_total
        );
        assert!(out.design.verify_function(&lib));
        assert!(out.design.verify_hazards(&lib));
    }

    #[test]
    fn edited_remap_matches_cold_map_of_edit() {
        let mut lib = builtin::lsi9k();
        lib.annotate_hazards();
        let base = eqs_of(
            &[
                ("f", "ab + a'c + bc"),
                ("g", "a'd + bc'd"),
                ("h", "cd + ab'"),
            ],
            &["a", "b", "c", "d"],
        );
        let edited = eqs_of(
            &[
                ("f", "ab + a'c + bc"),
                ("g", "a'd + bcd"),
                ("h", "cd + ab'"),
            ],
            &["a", "b", "c", "d"],
        );
        let mut session = EcoSession::new(&lib, seq_options());
        let base_out = session.map(&base).unwrap();
        let eco_out = session.map(&edited).unwrap();
        let cold = async_tmap(&edited, &lib, &seq_options()).unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&eco_out.design));
        assert_eq!(cold.stats.hazard_checks, eco_out.design.stats.hazard_checks);
        assert_eq!(cold.stats.buffers, eco_out.design.stats.buffers);
        // Only the edited cone's (new) shape was re-covered.
        assert!(eco_out.eco.cones_reused > 0, "{:?}", eco_out.eco);
        assert!(eco_out.eco.cones_remapped < base_out.eco.cones_total);
        assert!(eco_out.design.verify_function(&lib));
        assert!(eco_out.design.verify_hazards(&lib));
    }

    #[test]
    fn unchanged_remap_reuses_everything() {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let eqs = eqs_of(&[("f", "ab + a'c + bc")], &["a", "b", "c"]);
        let mut session = EcoSession::new(&lib, seq_options());
        let first = session.map(&eqs).unwrap();
        let second = session.map(&eqs).unwrap();
        assert_eq!(second.eco.cones_remapped, 0);
        assert_eq!(second.eco.cones_reused, second.eco.cones_total);
        assert_eq!(second.eco.cones_downstream_dirty, 0);
        assert_eq!(fingerprint(&first.design), fingerprint(&second.design));
        // Reuse totals still report the full hazard-filter work a cold
        // run would do (the fingerprint depends on it).
        assert_eq!(
            first.design.stats.hazard_checks,
            second.design.stats.hazard_checks
        );
        assert_eq!(second.design.stats.cones_reused, second.eco.cones_total);
    }

    #[test]
    fn delay_objective_sessions_match_cold() {
        let mut lib = builtin::lsi9k();
        lib.annotate_hazards();
        let opts = MapOptions {
            objective: crate::Objective::Delay,
            threads: 1,
            ..MapOptions::default()
        };
        let eqs = eqs_of(
            &[("f", "ab + c'd"), ("g", "a'b' + cd'")],
            &["a", "b", "c", "d"],
        );
        let cold = async_tmap(&eqs, &lib, &opts).unwrap();
        let mut session = EcoSession::new(&lib, opts);
        let out = session.map(&eqs).unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&out.design));
    }
}
