//! Static 0-hazard and single-input-change dynamic hazard analysis
//! (paper §4.1.2 and §4.2.3).
//!
//! Both hazard classes come from *vacuous terms*: after path labeling and
//! hazard-preserving flattening, a product containing a variable through two
//! paths in opposite phases (`…·yᵢ'·yⱼ·…`) can pulse while `y` changes.
//!
//! * If every other (proper) product is 0 for both values of `y`, the pulse
//!   appears on a steady-0 output: a **static 0-hazard**.
//! * If exactly one other product switches monotonically with `y`, the
//!   pulse can overlap the expected clean edge: a **s.i.c. dynamic hazard**.
//!
//! Sensitizability of the surrounding condition is decided with a BDD over
//! the original variables, and the set of sensitizing assignments is
//! reported as a cover.

use crate::Hazard;
use asyncmap_bdd::{Manager, Ref};
use asyncmap_bff::{Expr, PathSop};
use asyncmap_cube::{Cube, Phase, VarId};

/// Result of the path-based analysis.
#[derive(Debug, Clone, Default)]
pub struct SicAnalysis {
    /// Static 0-hazards found.
    pub static0: Vec<Hazard>,
    /// Single-input-change dynamic hazards found.
    pub dynamic_sic: Vec<Hazard>,
}

/// Maximum condition minterms examined per descriptor during waveform
/// confirmation.
const CONFIRM_CAP: u64 = 4096;

/// Analyzes `expr` (over `nvars` original variables) for static 0-hazards
/// and s.i.c. dynamic hazards.
///
/// The raw path-product conditions are *confirmed on the actual structure*
/// with the waveform oracle before being reported: distribution can invent
/// product pulses that a shared OR gate physically masks (e.g. in
/// `(w + x')(x + y)` with `w = 1` the first OR is pinned at 1 and the
/// output follows `x` cleanly, even though the flattened form contains the
/// pulsing product `x'x`).
pub fn find_sic_hazards(expr: &Expr, nvars: usize) -> SicAnalysis {
    let ps = PathSop::of(expr);
    let raw = find_sic_hazards_raw(&ps, nvars);
    SicAnalysis {
        static0: confirm(raw.static0, expr, nvars, |w| w.is_static_hazard()),
        dynamic_sic: confirm(raw.dynamic_sic, expr, nvars, |w| w.is_dynamic_hazard()),
    }
}

fn confirm(
    hazards: Vec<Hazard>,
    expr: &Expr,
    nvars: usize,
    accept: impl Fn(crate::Wave) -> bool,
) -> Vec<Hazard> {
    let mut out = Vec::new();
    for h in hazards {
        let (var, condition) = match &h {
            Hazard::Static0 { var, condition } => (*var, condition),
            Hazard::DynamicSic { var, condition, .. } => (*var, condition),
            _ => {
                out.push(h);
                continue;
            }
        };
        let mut kept = asyncmap_cube::Cover::zero(nvars);
        for cube in condition.cubes() {
            if cube.num_minterms() > CONFIRM_CAP {
                // Too large to confirm: keep the raw condition
                // (conservative over-report).
                kept.push(cube.clone());
                continue;
            }
            for m in cube.minterms() {
                let mut from = m.clone();
                from.set(var.index(), false);
                let mut to = m.clone();
                to.set(var.index(), true);
                let confirmed = accept(crate::wave_eval(expr, &from, &to))
                    || accept(crate::wave_eval(expr, &to, &from));
                if confirmed {
                    let mut ctx = Cube::minterm(&m);
                    ctx = ctx.without_var(var);
                    if !kept.cubes().contains(&ctx) {
                        kept.push(ctx);
                    }
                }
            }
        }
        if !kept.is_empty() {
            let kept = kept.without_contained_cubes();
            out.push(match h {
                Hazard::Static0 { var, .. } => Hazard::Static0 {
                    var,
                    condition: kept,
                },
                Hazard::DynamicSic { var, rising, .. } => Hazard::DynamicSic {
                    var,
                    rising,
                    condition: kept,
                },
                other => other,
            });
        }
    }
    out
}

/// The unfiltered path-product analysis: sound for two-level structures,
/// conservative (may over-report) for factored ones. Exposed for the
/// ablation benchmarks; [`find_sic_hazards`] is the confirmed form.
pub fn find_sic_hazards_raw(ps: &PathSop, nvars: usize) -> SicAnalysis {
    let mut mgr = Manager::new(nvars);
    let products = ps.cover.cubes();
    // Classify products once.
    let vacuous_vars: Vec<Vec<VarId>> = products.iter().map(|c| ps.vacuous_in(c)).collect();

    let mut out = SicAnalysis::default();
    for (ti, t) in products.iter().enumerate() {
        for &v in &vacuous_vars[ti] {
            // Condition: the non-v literals of t all at 1.
            let cond_t = product_without_var(&mut mgr, ps, t, v);
            if cond_t == Ref::ZERO {
                continue; // the rest of t clashes too; never sensitizable
            }
            // Static-0: all proper products 0 at both values of v.
            let mut others_quiet = Ref::ONE;
            for (qi, q) in products.iter().enumerate() {
                if qi == ti || !vacuous_vars[qi].is_empty() {
                    continue; // vacuous products are never steadily 1
                }
                for value in [false, true] {
                    let qv = product_with_var_fixed(&mut mgr, ps, q, v, value);
                    let nqv = mgr.not(qv);
                    others_quiet = mgr.and(others_quiet, nqv);
                }
            }
            let static0_cond = mgr.and(cond_t, others_quiet);
            if static0_cond != Ref::ZERO {
                out.static0.push(Hazard::Static0 {
                    var: v,
                    condition: mgr.to_cover(static0_cond),
                });
            }

            // Dynamic s.i.c.: one proper product u switches with v, the
            // remaining proper products stay 0 for both values of v.
            for (ui, u) in products.iter().enumerate() {
                if ui == ti || !vacuous_vars[ui].is_empty() {
                    continue;
                }
                let Some(_u_phase) = single_phase_of(ps, u, v) else {
                    continue; // u does not depend on v
                };
                let cond_u = product_without_var(&mut mgr, ps, u, v);
                if cond_u == Ref::ZERO {
                    continue;
                }
                let mut rest_quiet = Ref::ONE;
                for (qi, q) in products.iter().enumerate() {
                    if qi == ti || qi == ui || !vacuous_vars[qi].is_empty() {
                        continue;
                    }
                    for value in [false, true] {
                        let qv = product_with_var_fixed(&mut mgr, ps, q, v, value);
                        let nqv = mgr.not(qv);
                        rest_quiet = mgr.and(rest_quiet, nqv);
                    }
                }
                let sens = mgr.and(cond_t, cond_u);
                let sens = mgr.and(sens, rest_quiet);
                if sens != Ref::ZERO {
                    let condition = mgr.to_cover(sens);
                    let hazard = Hazard::DynamicSic {
                        var: v,
                        rising: true,
                        condition,
                    };
                    if !out.dynamic_sic.contains(&hazard) {
                        out.dynamic_sic.push(hazard);
                    }
                }
            }
        }
    }
    dedup_merge(&mut out.static0);
    out
}

/// BDD of a path product with the literals of original variable `v`
/// removed: the conjunction of the product's other literals, mapped back to
/// original variables.
fn product_without_var(mgr: &mut Manager, ps: &PathSop, product: &Cube, v: VarId) -> Ref {
    let mut acc = Ref::ONE;
    for (p, phase) in product.literals() {
        let orig = ps.labeling.original(p);
        if orig == v {
            continue;
        }
        let lit = mgr.literal(orig, phase);
        acc = mgr.and(acc, lit);
    }
    acc
}

/// BDD of a path product with original variable `v` frozen to `value`:
/// the product is identically 0 if any of its `v` literals disagrees with
/// `value`, otherwise the conjunction of the remaining literals.
fn product_with_var_fixed(
    mgr: &mut Manager,
    ps: &PathSop,
    product: &Cube,
    v: VarId,
    value: bool,
) -> Ref {
    let mut acc = Ref::ONE;
    for (p, phase) in product.literals() {
        let orig = ps.labeling.original(p);
        if orig == v {
            if phase.is_pos() != value {
                return Ref::ZERO;
            }
            continue;
        }
        let lit = mgr.literal(orig, phase);
        acc = mgr.and(acc, lit);
    }
    acc
}

/// If `product` depends on original variable `v` through exactly one phase,
/// returns that phase; `None` if `v` is absent (a vacuous dependence would
/// have been classified already).
fn single_phase_of(ps: &PathSop, product: &Cube, v: VarId) -> Option<Phase> {
    let mut found: Option<Phase> = None;
    for (p, phase) in product.literals() {
        if ps.labeling.original(p) == v {
            match found {
                None => found = Some(phase),
                Some(f) if f == phase => {}
                Some(_) => return None, // vacuous in v
            }
        }
    }
    found
}

/// Merges duplicate static-0 descriptors on the same variable by OR-ing
/// their conditions.
fn dedup_merge(list: &mut Vec<Hazard>) {
    let mut merged: Vec<Hazard> = Vec::new();
    for h in list.drain(..) {
        let Hazard::Static0 { var, condition } = &h else {
            merged.push(h);
            continue;
        };
        if let Some(Hazard::Static0 {
            condition: existing,
            ..
        }) = merged
            .iter_mut()
            .find(|m| matches!(m, Hazard::Static0 { var: mv, .. } if mv == var))
        {
            *existing = existing.or(condition).without_contained_cubes();
        } else {
            merged.push(h);
        }
    }
    *list = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::{Bits, VarTable};

    #[test]
    fn figure6a_static_0_hazard() {
        // Paper Figure 6a (McCluskey p.91): a circuit whose SOP expansion
        // contains the vacuous term x·x'. f = (w + x)(x' + z) + y... use the
        // figure's condition: static-0 when w=0, y=1?? We reproduce the
        // canonical example: f = (w + x)(x' + z): vacuous product x·x',
        // sensitized when w = 0 and z = 0.
        let mut vars = VarTable::new();
        let e = Expr::parse("(w + x)*(x' + z)", &mut vars).unwrap();
        let a = find_sic_hazards(&e, vars.len());
        assert_eq!(a.static0.len(), 1);
        let Hazard::Static0 { var, condition } = &a.static0[0] else {
            panic!()
        };
        assert_eq!(*var, vars.lookup("x").unwrap());
        // Sensitized exactly at w=0, z=0.
        let mut expect = Bits::new(3);
        let _ = &mut expect;
        let w = vars.lookup("w").unwrap();
        let z = vars.lookup("z").unwrap();
        let want = asyncmap_cube::Cover::from_cubes(
            3,
            vec![Cube::from_literals(3, [(w, Phase::Neg), (z, Phase::Neg)])],
        );
        assert!(condition.equivalent(&want));
    }

    #[test]
    fn figure6b_sic_dynamic_hazard() {
        // Paper Figure 6b: f = (w + y' + x')(xy + y'z) — the expression
        // reduces (w=0, x=z=1) to y₁'y₂ + y₁'y₃', giving a dynamic hazard
        // while y changes.
        let mut vars = VarTable::new();
        let e = Expr::parse("(w + y' + x')*(x*y + y'*z)", &mut vars).unwrap();
        let a = find_sic_hazards(&e, vars.len());
        let y = vars.lookup("y").unwrap();
        assert!(
            a.dynamic_sic
                .iter()
                .any(|h| matches!(h, Hazard::DynamicSic { var, .. } if *var == y)),
            "expected a s.i.c. dynamic hazard on y: {a:?}"
        );
    }

    #[test]
    fn two_level_sop_has_no_sic_hazards() {
        let mut vars = VarTable::new();
        let e = Expr::parse("a*b + a'*c + b*c", &mut vars).unwrap();
        let a = find_sic_hazards(&e, vars.len());
        assert!(a.static0.is_empty());
        assert!(a.dynamic_sic.is_empty());
    }

    #[test]
    fn unsensitizable_vacuous_term_is_no_hazard() {
        // (a + x)(x' + a): vacuous product x·x' needs... other literals of
        // the vacuous product: none besides x, x'. Other products: a·x',
        // a·x... wait distribute: a·x' + a·a + x·x' + x·a. For the vacuous
        // term to pulse alone we need a·x' = a·a = a·x = 0 for both values
        // of x → a = 0. Then the pulse is visible: static-0 on x IS
        // sensitizable. Use instead (a + x)(x' + 1)? Trivial. Take
        // f = (x + a)(x' + a): other products aa (=a) must be 0 → a=0; and
        // ax', ax must be 0 → a=0: sensitizable at a=0.
        // A truly unsensitizable case: f = (x + 1)(x' + a) has no vacuous
        // term after constant folding; instead force coverage:
        // f = (x + a)(x' + a) + a' — the extra gate a' is 1 whenever a=0,
        // so the pulse is masked and no static-0 hazard is reported.
        let mut vars = VarTable::new();
        let e = Expr::parse("(x + a)*(x' + a) + a'", &mut vars).unwrap();
        let a = find_sic_hazards(&e, vars.len());
        assert!(a.static0.is_empty(), "{a:?}");
    }

    #[test]
    fn figure4b_factored_mux_has_sic_hazards_only_for_y() {
        // Figure 4b: (w + y')(x + y). The vacuous product y'y is
        // sensitized when w = 0, x = 0 (both proper products then 0 for
        // both values of y? products: wx, wy, y'x, y'y. With w=0,x=0:
        // wx=0, wy=0, y'x=0 for any y: static-0 on y at w'x'.
        let mut vars = VarTable::new();
        let e = Expr::parse("(w + y')*(x + y)", &mut vars).unwrap();
        let a = find_sic_hazards(&e, vars.len());
        assert_eq!(a.static0.len(), 1);
        let Hazard::Static0 { var, .. } = &a.static0[0] else {
            panic!()
        };
        assert_eq!(*var, vars.lookup("y").unwrap());
    }
}
