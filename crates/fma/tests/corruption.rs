//! Corruption injection: every violation class the analyzer exists for
//! must be caught with its expected severity code when deliberately
//! introduced into a clean design (or its spec).
//!
//! * instance-graph cycles → `cycle.combinational`;
//! * forged spec bursts (the design no longer implements an edge) →
//!   `boundary.burst-mismatch`;
//! * a glitch-capable cover substituted for a hazard-free one →
//!   `boundary.containment`.

use asyncmap_burst::{benchmark, benchmark_spec, BurstSpec};
use asyncmap_core::{async_tmap, Instance, MapOptions, MapStats, MappedDesign};
use asyncmap_cube::{Bits, Cover, VarTable};
use asyncmap_fma::{analyze_design, analyze_design_with_spec};
use asyncmap_library::{builtin, Library};
use asyncmap_network::EquationSet;
use proptest::prelude::*;
use std::sync::LazyLock;

/// One mapped benchmark, shared by every generated case — corruption
/// operates on fresh copies.
static BASE: LazyLock<(MappedDesign, Library, BurstSpec)> = LazyLock::new(|| {
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let eqs = benchmark("scsi");
    let spec = benchmark_spec("scsi");
    let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    (design, lib, spec)
});

fn copy_design(d: &MappedDesign) -> MappedDesign {
    MappedDesign {
        library_name: d.library_name.clone(),
        subject: d.subject.clone(),
        cones: d.cones.clone(),
        covers: d.covers.clone(),
        area: d.area,
        delay: d.delay,
        stats: MapStats::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn injected_cycles_are_classified(cover_pick in 0usize..4096, pin_pick in 0usize..4096) {
        let (base, lib, _) = &*BASE;
        let mut design = copy_design(base);
        let candidates: Vec<usize> = design
            .covers
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.instances.is_empty())
            .map(|(i, _)| i)
            .collect();
        let cover = &mut design.covers[candidates[cover_pick % candidates.len()]];
        // Every instance of a cover feeds its root instance (the last one),
        // so wiring any pin of any instance to the root's output closes a
        // combinational loop through the cell graph.
        let root_out = cover.instances.last().unwrap().output;
        let n = cover.instances.len();
        let inst = &mut cover.instances[pin_pick % n];
        let p = pin_pick / n % inst.inputs.len().max(1);
        inst.inputs[p] = root_out;
        let report = analyze_design(&design, lib);
        prop_assert!(
            report.findings.iter().any(|f| f.code == "cycle.combinational"),
            "cycle not classified:\n{}",
            report.render()
        );
    }

    #[test]
    fn forged_output_bursts_are_flagged(edge_pick in 0usize..4096, out_pick in 0usize..4096) {
        let (base, lib, spec) = &*BASE;
        let mut forged = spec.clone();
        let e = edge_pick % forged.edges.len();
        let o = out_pick % forged.output_names.len();
        let burst = &mut forged.edges[e].output_burst;
        burst.set(o, !burst.get(o));
        // A flip can make the spec itself inconsistent (reconvergent
        // states with clashing outputs); those cases are not analyzable
        // designs and are discarded.
        if asyncmap_burst::expand(&forged).is_err() {
            return Ok(());
        }
        let report = analyze_design_with_spec(base, lib, &forged);
        prop_assert!(
            report
                .findings
                .iter()
                .any(|f| f.code == "boundary.burst-mismatch"),
            "forged burst (edge {e}, output {o}) not flagged:\n{}",
            report.render()
        );
    }
}

/// Figure 3 with its consensus term, mapped hazard-free — then the
/// cover is swapped for a single MUX2 (`s·a + s'·b`): same function
/// (`ab + a'c ≡ ab + a'c + bc`), but the mux's two-cube structure has
/// the textbook static-1 hazard at `b = c = 1`. The boundary sweep must
/// refuse the substitution.
#[test]
fn glitch_capable_cover_is_flagged() {
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let vars = VarTable::from_names(["a", "b", "c"]);
    let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
    let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
    let base = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    let clean = analyze_design(&base, &lib);
    assert!(clean.is_clean(), "{}", clean.render());

    // Locate MUX2 by truth table: f(s, a, b) = s·a + s'·b.
    let mux2 = lib
        .cells()
        .iter()
        .position(|c| {
            c.num_inputs() == 3
                && (0..8u32).all(|i| {
                    let mut pins = Bits::new(3);
                    for b in 0..3 {
                        pins.set(b, i >> b & 1 == 1);
                    }
                    let (s, a, b) = (pins.get(0), pins.get(1), pins.get(2));
                    c.bff().eval(&pins) == if s { a } else { b }
                })
        })
        .expect("LSI9K has a MUX2");

    let mut design = base;
    let out_sig = design
        .subject
        .outputs()
        .iter()
        .find(|(n, _)| n == "f")
        .expect("output f")
        .1;
    let cone_idx = design
        .cones
        .iter()
        .position(|c| c.root == out_sig)
        .expect("output cone");
    let leaf = |name: &str| {
        *design.cones[cone_idx]
            .leaves
            .iter()
            .find(|&&s| design.subject.name(s) == name)
            .unwrap_or_else(|| panic!("leaf {name}"))
    };
    let (a, b, c) = (leaf("a"), leaf("b"), leaf("c"));
    let root = design.cones[cone_idx].root;
    design.covers[cone_idx].instances = vec![Instance {
        cell_index: mux2,
        output: root,
        inputs: vec![a, b, c],
    }];

    let report = analyze_design(&design, &lib);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "boundary.containment"),
        "hazardous substitute cover not flagged:\n{}",
        report.render()
    );
}
