//! The `asyncmap` command-line tool: hazard-aware technology mapping for
//! burst-mode controllers, end to end from files.
//!
//! ```text
//! asyncmap audit <library.lib>                   hazard audit (Table 1 style)
//! asyncmap synth <machine.bms>                   hazard-free equations + dot
//! asyncmap map   <machine.bms> <library.lib>     synthesize + map + report
//!                [--objective area|delay] [--hand] [--sync] [--verilog out.v]
//! ```

use asyncmap::burst::{expand, hazard_free_cover, parse_bms, to_dot};
use asyncmap::mapper::{render_report, to_verilog, Objective};
use asyncmap::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("audit") => cmd_audit(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("map") => cmd_map(&args[1..]),
        _ => {
            eprintln!("usage: asyncmap <audit|synth|map> ... (see crate docs)");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn load_library(path: &str) -> Result<Library, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Library::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_spec(path: &str) -> Result<asyncmap::burst::BurstSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_bms(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("audit: missing library path")?;
    let mut lib = load_library(path)?;
    lib.annotate_hazards();
    let hazardous = lib.hazardous_cells();
    println!(
        "{}: {} elements, {} hazardous ({:.0}%)",
        lib.name(),
        lib.len(),
        hazardous.len(),
        100.0 * hazardous.len() as f64 / lib.len().max(1) as f64
    );
    for cell in hazardous {
        println!(
            "  {:12} {}",
            cell.name(),
            cell.hazards().expect("annotated").summary()
        );
    }
    Ok(())
}

fn synthesize(spec: &asyncmap::burst::BurstSpec) -> Result<EquationSet, String> {
    let flow = expand(spec).map_err(|e| e.to_string())?;
    let mut vars = VarTable::new();
    for n in &flow.var_names {
        vars.intern(n);
    }
    let mut equations = Vec::new();
    for f in &flow.functions {
        let cover = hazard_free_cover(f).map_err(|e| e.to_string())?;
        equations.push((f.name.clone(), cover));
    }
    Ok(EquationSet::new(vars, equations))
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("synth: missing .bms path")?;
    let spec = load_spec(path)?;
    let eqs = synthesize(&spec)?;
    println!("# hazard-free equations for machine {}", spec.name);
    for (name, cover) in &eqs.equations {
        println!("{name} = {}", cover.display(&eqs.inputs));
    }
    println!("\n# graphviz");
    print!("{}", to_dot(&spec).map_err(|e| e.to_string())?);
    Ok(())
}

fn cmd_map(args: &[String]) -> Result<(), String> {
    let spec_path = args.first().ok_or("map: missing .bms path")?;
    let lib_path = args.get(1).ok_or("map: missing library path")?;
    let mut objective = Objective::Area;
    let mut flow = "async";
    let mut verilog_out: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--objective" => {
                i += 1;
                objective = match args.get(i).map(String::as_str) {
                    Some("area") => Objective::Area,
                    Some("delay") => Objective::Delay,
                    other => return Err(format!("map: bad --objective {other:?}")),
                };
            }
            "--hand" => flow = "hand",
            "--sync" => flow = "sync",
            "--verilog" => {
                i += 1;
                verilog_out = Some(args.get(i).ok_or("map: --verilog needs a path")?.clone());
            }
            other => return Err(format!("map: unknown flag {other:?}")),
        }
        i += 1;
    }

    let spec = load_spec(spec_path)?;
    let eqs = synthesize(&spec)?;
    let mut lib = load_library(lib_path)?;
    lib.annotate_hazards();
    let options = MapOptions {
        objective,
        ..MapOptions::default()
    };
    let design = match flow {
        "hand" => hand_map(&eqs, &lib, &options),
        "sync" => tmap(&eqs, &lib, &options),
        _ => async_tmap(&eqs, &lib, &options),
    }
    .map_err(|e| e.to_string())?;
    if !design.verify_function(&lib) {
        return Err("internal error: mapped design is not equivalent".into());
    }
    if flow == "async" && !design.verify_hazards(&lib) {
        return Err("internal error: mapped design gained hazards".into());
    }
    print!("{}", render_report(&design, &lib));
    if let Some(path) = verilog_out {
        let module = spec.name.replace('-', "_");
        std::fs::write(&path, to_verilog(&design, &lib, &module))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}
