//! The BLIF netlist frontend: parses the Berkeley Logic Interchange
//! Format (`.model`/`.inputs`/`.outputs`/`.names`/`.latch`) into a
//! [`BlifNetlist`], statically analyzes its structure (drivers, cycles,
//! unused logic), and collapses the multi-level node graph into the
//! mapper's two-level [`EquationSet`] over primary inputs.
//!
//! Parsing is deliberately permissive about *structure* and strict about
//! *syntax*: dangling `.names` references, multiply-driven nets and
//! combinational cycles parse fine — they are what the preflight
//! qualification analyzer reports with severity-coded findings — while
//! malformed covers, don't-care constructs (`.exdc`, non-`0`/`1` output
//! values), duplicate `.model` outputs and unsupported directives
//! (`.subckt`, `.gate`, …) fail with a typed [`BlifError`] carrying a
//! 1-based line number. Nothing in this crate panics on any input.
//!
//! # Examples
//!
//! ```
//! let text = "
//! .model toy
//! .inputs a b c
//! .outputs f
//! .names a b t
//! 11 1
//! .names t c f
//! 1- 1
//! -1 1
//! .end
//! ";
//! let net = asyncmap_blif::parse_blif(text, "toy").unwrap();
//! assert_eq!(net.nodes.len(), 2);
//! let eqs = net.to_equations(&Default::default()).unwrap();
//! assert_eq!(eqs.equations.len(), 1); // f = a*b + c, collapsed over PIs
//! assert_eq!(eqs.equations[0].1.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collapse;
mod parse;
mod structure;

pub use collapse::{CollapseError, CollapseErrorKind, CollapseLimits};
pub use parse::parse_blif;
pub use structure::{NetRef, Structure};

use std::error::Error;
use std::fmt;

/// One row of a `.names` cover: the input plane (`0`/`1`/`-` per fanin)
/// and the output value.
#[derive(Debug, Clone)]
pub struct BlifRow {
    /// Input plane, one character per fanin.
    pub plane: String,
    /// `true` for an ON-set row (`1`), `false` for an OFF-set row (`0`).
    pub value: bool,
}

/// One `.names` logic node.
#[derive(Debug, Clone)]
pub struct BlifNode {
    /// 1-based line of the `.names` directive.
    pub line: usize,
    /// Fanin signal names, in plane order.
    pub inputs: Vec<String>,
    /// The signal this node drives.
    pub output: String,
    /// Cover rows. Empty means constant 0.
    pub rows: Vec<BlifRow>,
}

/// One `.latch` statement (recorded so the preflight pass can reject it
/// with a typed finding; the fundamental-mode mapper is combinational).
#[derive(Debug, Clone)]
pub struct BlifLatch {
    /// 1-based line of the `.latch` directive.
    pub line: usize,
    /// Data input signal.
    pub input: String,
    /// Latch output signal.
    pub output: String,
}

/// A parsed BLIF model.
#[derive(Debug, Clone)]
pub struct BlifNetlist {
    /// Model name (`.model`, or the caller-supplied default).
    pub model: String,
    /// Primary inputs, in declaration order.
    pub inputs: Vec<String>,
    /// Primary outputs, in declaration order.
    pub outputs: Vec<String>,
    /// Logic nodes, in file order.
    pub nodes: Vec<BlifNode>,
    /// Latches, in file order.
    pub latches: Vec<BlifLatch>,
}

impl BlifNetlist {
    /// Total number of cover rows over all nodes.
    pub fn num_rows(&self) -> usize {
        self.nodes.iter().map(|n| n.rows.len()).sum()
    }
}

/// What went wrong, machine-readably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlifErrorKind {
    /// A second `.model` in the same file (multi-model files are not
    /// supported).
    DuplicateModel,
    /// A signal listed twice in `.inputs`.
    DuplicateInput,
    /// A signal listed twice in `.outputs`.
    DuplicateOutput,
    /// A `.names` with no signals, or with a repeated fanin.
    BadNames,
    /// A cover row outside any `.names`, with a bad plane width, or with
    /// characters outside `0`/`1`/`-`.
    BadCover,
    /// A `.names` mixes ON-set (`1`) and OFF-set (`0`) rows.
    MixedCover,
    /// A don't-care construct: `.exdc` sections and non-`0`/`1` output
    /// values are rejected — the hazard-free synthesis contract gives the
    /// mapper fully specified functions.
    DontCare,
    /// A `.latch` with fewer than two signals.
    BadLatch,
    /// A directive this subset does not support (`.subckt`, `.gate`,
    /// `.mlatch`, `.search`, …).
    UnsupportedConstruct,
    /// The file declares no `.inputs`/`.outputs` at all.
    EmptyModel,
}

impl fmt::Display for BlifErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BlifErrorKind::DuplicateModel => "duplicate .model",
            BlifErrorKind::DuplicateInput => "duplicate input",
            BlifErrorKind::DuplicateOutput => "duplicate output",
            BlifErrorKind::BadNames => "bad .names",
            BlifErrorKind::BadCover => "bad cover row",
            BlifErrorKind::MixedCover => "mixed ON/OFF-set rows",
            BlifErrorKind::DontCare => "don't-care construct",
            BlifErrorKind::BadLatch => "bad .latch",
            BlifErrorKind::UnsupportedConstruct => "unsupported construct",
            BlifErrorKind::EmptyModel => "empty model",
        })
    }
}

/// Error produced when BLIF parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlifError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// Machine-readable failure class.
    pub kind: BlifErrorKind,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for BlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "blif parse error at line {}: {}: {}",
            self.line, self.kind, self.message
        )
    }
}

impl Error for BlifError {}
