//! Path labeling of multi-level expressions (paper §4.2.3).
//!
//! To analyze static 0-hazards and single-input-change dynamic hazards, the
//! paper relabels the variables of a multi-level network so that *each
//! distinct path a signal takes is identified*, then transforms the
//! expression to SOP form. A product term that contains two paths of the
//! same variable in opposite phases is a vacuous term in the original
//! variable space — the signature of a reconvergent fanout hazard.
//!
//! Labeling happens on the negation-normal form, so each path label also
//! carries its final polarity in the expression structure.

use crate::{flatten, Expr};
use asyncmap_cube::{Cover, Cube, Phase, VarId};

/// Maps path variables (fresh `VarId`s in a path space) back to the original
/// variables they are occurrences of.
#[derive(Debug, Clone, Default)]
pub struct PathLabeling {
    path_var: Vec<VarId>,
}

impl PathLabeling {
    /// The original variable of path `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a path variable of this labeling.
    pub fn original(&self, p: VarId) -> VarId {
        self.path_var[p.index()]
    }

    /// Number of paths (= leaf occurrences in the labeled expression).
    pub fn num_paths(&self) -> usize {
        self.path_var.len()
    }

    /// All paths of original variable `v`.
    pub fn paths_of(&self, v: VarId) -> Vec<VarId> {
        self.path_var
            .iter()
            .enumerate()
            .filter(|&(_, &orig)| orig == v)
            .map(|(i, _)| VarId(i))
            .collect()
    }
}

/// Rewrites `expr` into negation-normal form with every variable occurrence
/// replaced by a fresh *path variable*, returning the rewritten expression
/// (over the path space) and the labeling.
pub fn label_paths(expr: &Expr) -> (Expr, PathLabeling) {
    let nnf = expr.to_nnf().simplify_assoc();
    let mut labeling = PathLabeling::default();
    let labeled = relabel(&nnf, &mut labeling);
    (labeled, labeling)
}

fn relabel(e: &Expr, labeling: &mut PathLabeling) -> Expr {
    match e {
        Expr::Const(b) => Expr::Const(*b),
        Expr::Var(v) => {
            let p = VarId(labeling.path_var.len());
            labeling.path_var.push(*v);
            Expr::Var(p)
        }
        Expr::Not(inner) => match &**inner {
            Expr::Var(v) => {
                let p = VarId(labeling.path_var.len());
                labeling.path_var.push(*v);
                Expr::Var(p).not()
            }
            other => unreachable!("path labeling input not in NNF: Not({other:?})"),
        },
        Expr::And(es) => Expr::And(es.iter().map(|t| relabel(t, labeling)).collect()),
        Expr::Or(es) => Expr::Or(es.iter().map(|t| relabel(t, labeling)).collect()),
    }
}

/// A multi-level expression flattened to SOP over its *path space*.
///
/// Because every path variable occurs exactly once in the labeled
/// expression, no product can contain a clashing pair of path literals; the
/// interesting clashes are between *different paths of the same original
/// variable*, exposed by [`PathSop::vacuous_in`].
#[derive(Debug, Clone)]
pub struct PathSop {
    /// The SOP over path variables, in distribution order.
    pub cover: Cover,
    /// Path → original variable mapping.
    pub labeling: PathLabeling,
}

impl PathSop {
    /// Builds the path SOP of `expr`.
    pub fn of(expr: &Expr) -> PathSop {
        let (labeled, labeling) = label_paths(expr);
        let flat = flatten(&labeled, labeling.num_paths());
        debug_assert!(
            flat.vacuous.is_empty(),
            "path-space products cannot clash (each path occurs once)"
        );
        PathSop {
            cover: flat.cover,
            labeling,
        }
    }

    /// For product term `cube`, the original variables that appear through
    /// two paths with *opposite* phases — i.e. the variables making the term
    /// vacuous in the original space.
    pub fn vacuous_in(&self, cube: &Cube) -> Vec<VarId> {
        let mut pos: Vec<VarId> = Vec::new();
        let mut neg: Vec<VarId> = Vec::new();
        for (p, phase) in cube.literals() {
            let orig = self.labeling.original(p);
            match phase {
                Phase::Pos => pos.push(orig),
                Phase::Neg => neg.push(orig),
            }
        }
        let mut out: Vec<VarId> = pos.into_iter().filter(|v| neg.contains(v)).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Collapses a path cube back to the original variable space. Returns
    /// `None` when the cube is vacuous (contains opposite-phase paths of one
    /// variable).
    pub fn to_original_cube(&self, cube: &Cube, nvars: usize) -> Option<Cube> {
        let mut literals: Vec<(VarId, Phase)> = Vec::new();
        for (p, phase) in cube.literals() {
            let orig = self.labeling.original(p);
            if let Some(&(_, existing)) = literals.iter().find(|&&(v, _)| v == orig) {
                if existing != phase {
                    return None;
                }
            } else {
                literals.push((orig, phase));
            }
        }
        Some(Cube::from_literals(nvars, literals))
    }

    /// Collapses the whole path SOP to a cover over the original space,
    /// dropping vacuous products. Equivalent to [`flatten`] on the original
    /// expression; useful to cross-check the labeling.
    pub fn to_original_cover(&self, nvars: usize) -> Cover {
        let mut out = Cover::zero(nvars);
        for c in self.cover.cubes() {
            if let Some(cube) = self.to_original_cube(c, nvars) {
                out.push(cube);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::{Bits, VarTable};

    #[test]
    fn each_occurrence_gets_a_path() {
        let mut vars = VarTable::new();
        // y occurs 3 times (paper Figure 6 style).
        let e = Expr::parse("(w + y')*(x*y + y'*z)", &mut vars).unwrap();
        let (_, labeling) = label_paths(&e);
        let y = vars.lookup("y").unwrap();
        assert_eq!(labeling.paths_of(y).len(), 3);
        assert_eq!(labeling.num_paths(), 6);
    }

    #[test]
    fn path_sop_has_figure6_vacuous_term() {
        let mut vars = VarTable::new();
        let e = Expr::parse("(w + y')*(x*y + y'*z)", &mut vars).unwrap();
        let ps = PathSop::of(&e);
        let y = vars.lookup("y").unwrap();
        // Exactly one product (y₁'·x·y₂) is vacuous through y.
        let vac: Vec<_> = ps
            .cover
            .cubes()
            .iter()
            .filter(|c| !ps.vacuous_in(c).is_empty())
            .collect();
        assert_eq!(vac.len(), 1);
        assert_eq!(ps.vacuous_in(vac[0]), vec![y]);
    }

    #[test]
    fn to_original_cover_matches_direct_flatten() {
        let mut vars = VarTable::new();
        let e = Expr::parse("(a + b')*(c + a*b)", &mut vars).unwrap();
        let ps = PathSop::of(&e);
        let direct = flatten(&e, vars.len());
        let collapsed = ps.to_original_cover(vars.len());
        assert!(collapsed.equivalent(&direct.cover));
        // And pointwise equal to the expression itself.
        for m in 0..(1usize << vars.len()) {
            let mut bits = Bits::new(vars.len());
            for v in 0..vars.len() {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(e.eval(&bits), collapsed.eval(&bits));
        }
    }

    #[test]
    fn single_occurrence_expression_has_no_vacuous_terms() {
        let mut vars = VarTable::new();
        let e = Expr::parse("a*b + c'*d", &mut vars).unwrap();
        let ps = PathSop::of(&e);
        for c in ps.cover.cubes() {
            assert!(ps.vacuous_in(c).is_empty());
        }
    }
}
