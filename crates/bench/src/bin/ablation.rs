//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! 1. hazard filtering on vs off in matching (quality + runtime cost);
//! 2. the paper's single-pass static-1 analysis vs the complete closure;
//! 3. eager (load-time) vs lazy (first-use) library hazard annotation;
//! 4. cluster depth bound sweep (the paper's tables fix depth = 5).

use asyncmap_bench::{header, secs, time_median};
use asyncmap_core::{async_tmap, tmap, ClusterLimits, MapOptions};
use asyncmap_cube::Cover;
use asyncmap_hazard::{static_1_analysis, static_1_complete};
use std::time::Instant;

fn main() {
    hazard_filter_ablation();
    static1_ablation();
    annotation_ablation();
    depth_sweep();
    hazard_dont_care();
}

fn hazard_dont_care() {
    header(
        "Ablation 5: hazard don't-cares (paper §6 future work) — protect only the specified bursts",
        &format!(
            "{:13} {:>10} {:>10} {:>10} {:>8}",
            "Design", "async area", "hdc area", "saving", "bursts"
        ),
    );
    let mut lib = asyncmap_library::builtin::actel();
    lib.annotate_hazards();
    for name in ["dme", "dme-fast-opt", "pe-send-ifc"] {
        let (eqs, transitions) = asyncmap_burst::benchmark_with_transitions(name);
        let opts = MapOptions::default();
        let asy = async_tmap(&eqs, &lib, &opts).expect("mappable");
        let hdc = asyncmap_core::hdc_tmap(&eqs, &lib, &opts, &transitions).expect("mappable");
        assert!(hdc.verify_function(&lib));
        assert!(hdc.verify_hazards_on(&lib, &transitions));
        // Contrast: protecting nothing recovers the synchronous freedom.
        let free = asyncmap_core::hdc_tmap(&eqs, &lib, &opts, &[]).expect("mappable");
        println!(
            "{:13} {:>10.0} {:>10.0} {:>9.1}% {:>8}   (unprotected: {:.0})",
            name,
            asy.area,
            hdc.area,
            100.0 * (asy.area - hdc.area) / asy.area,
            transitions.len(),
            free.area
        );
    }
    println!("0% saving = every specified burst really exercises the rejected cells' hazards;");
    println!("the unprotected column shows the area the don't-cares could recover.");
}

fn hazard_filter_ablation() {
    header(
        "Ablation 1: hazard filter on/off (Actel, hazardous-rich library)",
        &format!(
            "{:13} {:>10} {:>10} {:>10} {:>10}",
            "Design", "sync area", "async area", "sync t", "async t"
        ),
    );
    let mut lib = asyncmap_library::builtin::actel();
    lib.annotate_hazards();
    for name in ["dme", "dme-fast-opt", "pe-send-ifc"] {
        let eqs = asyncmap_burst::benchmark(name);
        let opts = MapOptions::default();
        let t = Instant::now();
        let sync = tmap(&eqs, &lib, &opts).expect("mappable");
        let ts = t.elapsed();
        let t = Instant::now();
        let asy = async_tmap(&eqs, &lib, &opts).expect("mappable");
        let ta = t.elapsed();
        println!(
            "{:13} {:>10.0} {:>10.0} {:>10} {:>10}",
            name,
            sync.area,
            asy.area,
            secs(ts),
            secs(ta)
        );
    }
}

fn static1_ablation() {
    header(
        "Ablation 2: single-pass vs complete static-1 analysis",
        &format!(
            "{:13} {:>8} {:>12} {:>12} {:>9}",
            "Design", "cubes", "single-pass", "complete", "agree?"
        ),
    );
    for name in ["dme", "pe-send-ifc", "abcs"] {
        let eqs = asyncmap_burst::benchmark(name);
        let covers: Vec<&Cover> = eqs.equations.iter().map(|(_, c)| c).collect();
        let t_single = time_median(3, || {
            covers
                .iter()
                .map(|c| static_1_analysis(c).len())
                .sum::<usize>()
        });
        let t_complete = time_median(3, || {
            covers
                .iter()
                .map(|c| static_1_complete(c).len())
                .sum::<usize>()
        });
        let agree = covers
            .iter()
            .all(|c| static_1_analysis(c).is_empty() == static_1_complete(c).is_empty());
        println!(
            "{:13} {:>8} {:>12} {:>12} {:>9}",
            name,
            eqs.num_cubes(),
            secs(t_single),
            secs(t_complete),
            agree
        );
    }
}

fn annotation_ablation() {
    header(
        "Ablation 3: eager vs lazy hazard annotation (GDT, slowest library)",
        &format!("{:28} {:>12}", "Strategy", "Time"),
    );
    let eager = time_median(3, || {
        let mut lib = asyncmap_library::builtin::gdt();
        lib.annotate_hazards();
        lib.len()
    });
    // Lazy: only the cells a small design's matcher actually touches would
    // be analyzed; upper-bounded here by annotating the hazardous subset
    // discovered on demand (GDT has none, so lazy ≈ construction cost).
    let lazy = time_median(3, || asyncmap_library::builtin::gdt().len());
    println!("{:28} {:>12}", "eager (paper's choice)", secs(eager));
    println!("{:28} {:>12}", "lazy (construction only)", secs(lazy));
    println!("eager pays once per library; lazy re-pays per design run");
}

fn depth_sweep() {
    header(
        "Ablation 4: cluster depth bound (async, LSI9K, design dme)",
        &format!(
            "{:>6} {:>10} {:>10} {:>10}",
            "depth", "area", "delay", "time"
        ),
    );
    let mut lib = asyncmap_library::builtin::lsi9k();
    lib.annotate_hazards();
    let eqs = asyncmap_burst::benchmark("dme");
    for depth in [2, 3, 4, 5, 6] {
        let opts = MapOptions {
            limits: ClusterLimits {
                max_depth: depth,
                ..ClusterLimits::default()
            },
            ..MapOptions::default()
        };
        let t = Instant::now();
        let d = async_tmap(&eqs, &lib, &opts).expect("mappable");
        println!(
            "{:>6} {:>10.0} {:>9.2}n {:>10}",
            depth,
            d.area,
            d.delay,
            secs(t.elapsed())
        );
    }
}
