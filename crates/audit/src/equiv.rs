//! Independent functional-equivalence proofs and support compaction for
//! certificate replay.
//!
//! The packed truth-table evaluator here is deliberately *not* shared with
//! `asyncmap_core::truth` (the mapper's kernel): the audit re-proves
//! equivalence with its own code so a bug in the mapper's fast paths
//! cannot vouch for itself. Supports of up to [`TRUTH_VAR_LIMIT`]
//! variables are decided by 256-bit packed tables; anything wider falls
//! back to BDDs from `asyncmap-bdd`.

use asyncmap_bdd::{Manager, Ref};
use asyncmap_bff::Expr;
use asyncmap_cube::{Phase, VarId};

/// Largest support decided by packed truth tables; wider supports use the
/// BDD fallback.
pub const TRUTH_VAR_LIMIT: usize = 8;

/// Which engine discharged an equivalence proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquivProof {
    /// 256-bit packed truth tables over the compacted support.
    Truth,
    /// BDD equality over the full variable space.
    Bdd,
}

/// Bit patterns of variables 0–5 within one 64-bit truth-table word.
const WORD_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// One 64-bit word (index `w` of 4) of the 8-variable packed truth table
/// of `expr`. Variables 6 and 7 select the word, so an expression over at
/// most 8 compacted variables is fully described by words 0..4.
fn truth_word(expr: &Expr, w: usize) -> u64 {
    match expr {
        Expr::Const(true) => !0,
        Expr::Const(false) => 0,
        Expr::Var(v) => {
            let i = v.index();
            if i < 6 {
                WORD_MASKS[i]
            } else if (w >> (i - 6)) & 1 == 1 {
                !0
            } else {
                0
            }
        }
        Expr::Not(e) => !truth_word(e, w),
        Expr::And(es) => es.iter().fold(!0u64, |acc, e| acc & truth_word(e, w)),
        Expr::Or(es) => es.iter().fold(0u64, |acc, e| acc | truth_word(e, w)),
    }
}

/// The full 256-bit packed truth table of `expr`, which must mention only
/// variables `0..8`.
pub fn truth256(expr: &Expr) -> [u64; 4] {
    [0, 1, 2, 3].map(|w| truth_word(expr, w))
}

fn bdd_of(mgr: &mut Manager, expr: &Expr) -> Ref {
    match expr {
        Expr::Const(true) => Ref::ONE,
        Expr::Const(false) => Ref::ZERO,
        Expr::Var(v) => mgr.var(*v),
        Expr::Not(e) => {
            let inner = bdd_of(mgr, e);
            mgr.not(inner)
        }
        Expr::And(es) => {
            let mut acc = Ref::ONE;
            for e in es {
                let r = bdd_of(mgr, e);
                acc = mgr.and(acc, r);
            }
            acc
        }
        Expr::Or(es) => {
            let mut acc = Ref::ZERO;
            for e in es {
                let r = bdd_of(mgr, e);
                acc = mgr.or(acc, r);
            }
            acc
        }
    }
}

/// The union of the two expressions' supports, sorted.
pub fn union_support(a: &Expr, b: &Expr) -> Vec<VarId> {
    let mut s = a.support();
    s.extend(b.support());
    s.sort();
    s.dedup();
    s
}

/// Remaps `expr` onto the compact space where `support[i]` becomes
/// variable `i`. Every variable of `expr` must appear in `support`.
pub fn compact_onto(expr: &Expr, support: &[VarId]) -> Expr {
    expr.substitute(&|v| {
        let pos = support
            .binary_search(&v)
            .expect("expression variable missing from support");
        (VarId(pos), Phase::Pos)
    })
}

/// Proves or refutes `a ≡ b` over an `nvars`-variable space: packed truth
/// tables over the compacted shared support when it has at most
/// [`TRUTH_VAR_LIMIT`] variables, BDDs otherwise.
pub fn prove_equal(a: &Expr, b: &Expr, nvars: usize) -> (bool, EquivProof) {
    let support = union_support(a, b);
    if support.len() <= TRUTH_VAR_LIMIT {
        let ca = compact_onto(a, &support);
        let cb = compact_onto(b, &support);
        (truth256(&ca) == truth256(&cb), EquivProof::Truth)
    } else {
        let mut mgr = Manager::new(nvars);
        let ra = bdd_of(&mut mgr, a);
        let rb = bdd_of(&mut mgr, b);
        (ra == rb, EquivProof::Bdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::{Bits, VarTable};

    fn exprs(a: &str, b: &str) -> (Expr, Expr, usize) {
        let mut vars = VarTable::new();
        let ea = Expr::parse(a, &mut vars).unwrap();
        let eb = Expr::parse_in(b, &vars).unwrap();
        (ea, eb, vars.len())
    }

    #[test]
    fn truth_table_agrees_with_eval() {
        let mut vars = VarTable::new();
        let e = Expr::parse("(a + b')*(c + a*d) + b*c'", &mut vars).unwrap();
        let t = truth256(&e);
        for m in 0..(1usize << vars.len()) {
            let mut bits = Bits::new(8);
            for v in 0..vars.len() {
                bits.set(v, (m >> v) & 1 == 1);
            }
            let got = (t[m >> 6] >> (m & 63)) & 1 == 1;
            assert_eq!(got, e.eval(&bits), "minterm {m}");
        }
    }

    #[test]
    fn equivalent_forms_prove_equal() {
        let (a, b, n) = exprs("(w + y')*(x + y)", "w*x + w*y + y'*x + y'*y");
        let (eq, proof) = prove_equal(&a, &b, n);
        assert!(eq);
        assert_eq!(proof, EquivProof::Truth);
    }

    #[test]
    fn different_functions_refuted() {
        let (a, b, n) = exprs("a*b + c", "a*b + c*a");
        assert!(!prove_equal(&a, &b, n).0);
    }

    #[test]
    fn wide_supports_fall_back_to_bdds() {
        let names: Vec<String> = (0..12).map(|i| format!("v{i}")).collect();
        let vars = VarTable::from_names(names.iter().map(String::as_str));
        let terms: Vec<Expr> = (0..12).map(|i| Expr::Var(VarId(i))).collect();
        let a = Expr::Or(terms.clone());
        let mut rev = terms;
        rev.reverse();
        let b = Expr::Or(rev);
        let (eq, proof) = prove_equal(&a, &b, vars.len());
        assert!(eq);
        assert_eq!(proof, EquivProof::Bdd);
        let c = Expr::And(vec![Expr::Var(VarId(0)), Expr::Var(VarId(11))]);
        assert!(!prove_equal(&a, &c, vars.len()).0);
    }

    #[test]
    fn compaction_is_order_preserving() {
        let mut vars = VarTable::new();
        for name in ["p", "q", "r", "s", "t", "u", "v", "w", "x", "y"] {
            vars.intern(name);
        }
        let a = Expr::And(vec![Expr::Var(VarId(8)), Expr::Var(VarId(9)).not()]);
        let b = Expr::And(vec![Expr::Var(VarId(8)), Expr::Var(VarId(9)).not()]);
        let (eq, proof) = prove_equal(&a, &b, vars.len());
        assert!(eq);
        assert_eq!(
            proof,
            EquivProof::Truth,
            "support {{8,9}} compacts to 2 vars"
        );
    }
}
