//! Shared helpers for the table-regeneration binaries and criterion
//! benches. Each `table<N>` binary regenerates the corresponding table of
//! the paper's evaluation section; `ablation` exercises the design choices
//! called out in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asyncmap_core::{MappedDesign, PhaseTimes};
use asyncmap_library::{builtin, Library};
use std::time::{Duration, Instant};

pub mod edit;
pub mod gen;

pub use edit::{apply_edits, emit_edits, generate_edits, parse_edits};
pub use gen::{emit_design, generate, parse_design, GenSpec};

/// Summary of a mapped design used to assert two mapping configurations
/// produced bit-identical results (shared by the `speedup` and
/// `fingerprint` binaries and the CI divergence gate).
pub fn design_fingerprint(d: &MappedDesign) -> (u64, u64, usize, usize) {
    (
        d.area.to_bits(),
        d.delay.to_bits(),
        d.num_instances(),
        d.stats.hazard_rejects,
    )
}

/// The four evaluation libraries in the paper's order, unannotated.
pub fn libraries() -> Vec<Library> {
    builtin::all_libraries()
}

/// Untimed executions before sampling begins. Page faults on
/// freshly-mapped code, lazily-grown allocator arenas, and cold verdict
/// caches all land in the first couple of runs; without discarding them a
/// warm-cache configuration measured *after* its own cold baseline could
/// paradoxically report a median above it (the seed benchmarks showed
/// `pe-send-ifc/warm` at 0.88× sequential with a 100% cache hit rate —
/// pure first-sample noise).
pub const WARMUP_RUNS: usize = 2;

/// Median wall-clock time of `runs` executions of `f`, preceded by
/// [`WARMUP_RUNS`] untimed warm-up executions.
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(runs > 0);
    for _ in 0..WARMUP_RUNS {
        std::hint::black_box(f());
    }
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Median wall-clock times of `runs` executions each of `a` and `b`,
/// sampled alternately so slow environment drift (thermal throttling, a
/// busy container) biases neither side, after [`WARMUP_RUNS`] untimed
/// warm-up executions of each.
pub fn time_median_pair<T, U>(
    runs: usize,
    mut a: impl FnMut() -> T,
    mut b: impl FnMut() -> U,
) -> (Duration, Duration) {
    assert!(runs > 0);
    for _ in 0..WARMUP_RUNS {
        std::hint::black_box(a());
        std::hint::black_box(b());
    }
    let mut sa: Vec<Duration> = Vec::with_capacity(runs);
    let mut sb: Vec<Duration> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        std::hint::black_box(a());
        sa.push(t.elapsed());
        let t = Instant::now();
        std::hint::black_box(b());
        sb.push(t.elapsed());
    }
    sa.sort();
    sb.sort();
    (sa[runs / 2], sb[runs / 2])
}

/// Detected host parallelism (`std::thread::available_parallelism`), `1`
/// when detection fails. Recorded in every [`BenchRecord`] so a report
/// measured on a small container can't masquerade as a scaling result.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Formats a duration with adaptive units (e.g. `"431.07µs"`, `"1.24s"`).
pub fn secs(d: Duration) -> String {
    format!("{d:.2?}")
}

/// Prints a table header followed by a rule line.
pub fn header(title: &str, columns: &str) {
    println!("\n=== {title} ===");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len()));
}

/// One timed configuration of the `speedup` binary, serialized into the
/// machine-readable `BENCH_mapping.json` report.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Configuration name, e.g. `"scsi/seq"` or `"pe-send-ifc/warm"`.
    pub name: String,
    /// Median wall-clock time over the measured runs.
    pub median: Duration,
    /// Worker threads the configuration mapped with.
    pub threads: usize,
    /// Host parallelism ([`host_cpus`]) at measurement time. A record with
    /// `threads > host_cpus` timed an oversubscribed configuration, so its
    /// numbers say nothing about true parallel scaling — consumers (and
    /// the `speedup` binary itself) must not read a speedup out of it.
    pub host_cpus: usize,
    /// Fraction of hazard checks answered by the verdict cache; `None`
    /// (omitted from the JSON) when the run performed no hazard checks —
    /// a rate of a zero-lookup cache is meaningless, not zero.
    pub cache_hit_rate: Option<f64>,
    /// Fraction of match-memo lookups served from the NPN memo; `None`
    /// when the memo is disabled or saw no lookups.
    pub npn_hit_rate: Option<f64>,
    /// Per-phase time breakdown of one representative run (zero when the
    /// profiler is compiled out).
    pub phases: PhaseTimes,
    /// Sequential-over-this-configuration time ratio (>1 means this
    /// configuration is faster than the sequential baseline); `None` for
    /// baseline records.
    pub speedup_vs_seq: Option<f64>,
}

/// Serializes `records` as a JSON array (std-only writer; names are
/// escaped for quotes and backslashes, which covers every name the
/// binaries emit).
pub fn records_to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let name: String = r
            .name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        let mut extra = String::new();
        if !r.phases.is_zero() {
            extra.push_str(", \"phases\": {");
            let mut first = true;
            for (phase, secs, count) in r.phases.entries() {
                if count == 0 {
                    continue;
                }
                if !first {
                    extra.push_str(", ");
                }
                first = false;
                extra.push_str(&format!(
                    "\"{phase}\": {{\"seconds\": {secs:.9}, \"calls\": {count}}}"
                ));
            }
            extra.push('}');
        }
        if let Some(ratio) = r.speedup_vs_seq {
            extra.push_str(&format!(", \"speedup_vs_seq\": {ratio:.4}"));
        }
        let mut rates = String::new();
        if let Some(rate) = r.cache_hit_rate {
            rates.push_str(&format!(", \"cache_hit_rate\": {rate:.6}"));
        }
        if let Some(rate) = r.npn_hit_rate {
            rates.push_str(&format!(", \"npn_hit_rate\": {rate:.6}"));
        }
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"median_seconds\": {:.9}, \"threads\": {}, \"host_cpus\": {}{}{}}}{}\n",
            name,
            r.median.as_secs_f64(),
            r.threads,
            r.host_cpus,
            rates,
            extra,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

/// Writes `records` to `path` as JSON.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_json(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    std::fs::write(path, records_to_json(records) + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libraries_are_the_table1_four() {
        let names: Vec<String> = libraries().iter().map(|l| l.name().to_owned()).collect();
        assert_eq!(names, ["LSI9K", "CMOS3", "GDT", "Actel"]);
    }

    #[test]
    fn time_median_is_monotone_in_work() {
        // black_box keeps the optimizer from collapsing the loop into a
        // closed form, which made "slow" occasionally time under "fast".
        let fast = time_median(5, || std::hint::black_box(1u64) + 1);
        let slow = time_median(5, || {
            let mut acc = 0u64;
            for i in 0..500_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert!(slow >= fast, "slow={slow:?} fast={fast:?}");
    }

    #[test]
    fn json_report_is_well_formed() {
        let records = vec![
            BenchRecord {
                name: "scsi/seq".into(),
                median: Duration::from_millis(1500),
                threads: 1,
                host_cpus: 8,
                cache_hit_rate: None,
                npn_hit_rate: Some(0.96),
                phases: PhaseTimes::default(),
                speedup_vs_seq: None,
            },
            BenchRecord {
                name: "scsi/par\"4\"".into(),
                median: Duration::from_micros(700),
                threads: 4,
                host_cpus: 8,
                cache_hit_rate: Some(0.25),
                npn_hit_rate: None,
                phases: PhaseTimes::default(),
                speedup_vs_seq: Some(2.14),
            },
        ];
        let json = records_to_json(&records);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"median_seconds\": 1.500000000"));
        assert!(json.contains("\"threads\": 4"));
        assert_eq!(json.matches("\"host_cpus\": 8").count(), 2);
        assert!(json.contains("\\\"4\\\""));
        assert!(json.contains("\"cache_hit_rate\": 0.250000"));
        assert!(json.contains("\"npn_hit_rate\": 0.960000"));
        // A run with no hazard checks omits the rate instead of reporting
        // a misleading 0.0 — exactly one record carries each rate here.
        assert_eq!(json.matches("\"cache_hit_rate\"").count(), 1);
        assert_eq!(json.matches("\"npn_hit_rate\"").count(), 1);
        assert!(json.contains("\"speedup_vs_seq\": 2.1400"));
        // Zero phase times are elided entirely.
        assert!(!json.contains("\"phases\""));
        assert_eq!(json.matches('{').count(), 2);
    }

    #[test]
    fn json_report_includes_recorded_phases() {
        // Record a real phase delta through the profiler so the breakdown
        // serializer sees nonzero data.
        let before = asyncmap_core::profile::snapshot();
        {
            let _t = asyncmap_core::profile::timer(asyncmap_core::MapPhase::Decompose);
            std::hint::black_box(0u64);
        }
        let phases = asyncmap_core::profile::snapshot().delta(&before);
        let records = vec![BenchRecord {
            name: "x".into(),
            median: Duration::from_millis(1),
            threads: 1,
            host_cpus: host_cpus(),
            cache_hit_rate: None,
            npn_hit_rate: None,
            phases,
            speedup_vs_seq: None,
        }];
        let json = records_to_json(&records);
        assert!(json.contains("\"phases\""), "{json}");
        assert!(json.contains("\"decompose\""), "{json}");
        assert!(json.contains("\"calls\": 1"), "{json}");
    }
}
