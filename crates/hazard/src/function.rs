//! Function-hazard tests (paper §2.3, §4.2.1).
//!
//! Function hazards are a property of the function, not the implementation;
//! the logic-hazard algorithms use these predicates to restrict attention to
//! function-hazard-free transition spaces (Theorem 4.1, condition 1).

use asyncmap_cube::{Bits, Cover, Cube};

/// `true` iff the *static* transition across the whole cube `space` is free
/// of function hazards, i.e. `f` is constant on `space`.
pub fn static_function_hazard_free(f: &Cover, space: &Cube) -> bool {
    f.covers_cube(space) || disjoint(f, space)
}

/// `true` iff `f` intersects no minterm of `cube`.
pub fn disjoint(f: &Cover, cube: &Cube) -> bool {
    f.cubes().iter().all(|c| c.intersect(cube).is_none())
}

/// `true` iff the *dynamic* transition from minterm `alpha` to minterm
/// `beta` is free of function hazards: the function changes monotonically
/// along every change order.
///
/// With `f(α) = 0` and `f(β) = 1`, the transition has a function hazard iff
/// there are points `x ≼ y` on some monotone path (i.e. `y ∈ T[x, β]`) with
/// `f(x) = 1` and `f(y) = 0`; this enumeration is exponential only in the
/// Hamming distance of the transition, which is the burst width.
///
/// # Panics
///
/// Panics if `alpha`/`beta` are not minterms, if the endpoints have equal
/// function value, or if the burst is wider than 16 inputs.
pub fn dynamic_function_hazard_free(f: &Cover, alpha: &Bits, beta: &Bits) -> bool {
    let a = Cube::minterm(alpha);
    let b = Cube::minterm(beta);
    let (fa, fb) = (f.eval(alpha), f.eval(beta));
    assert_ne!(fa, fb, "dynamic transition requires f(α) ≠ f(β)");
    // Orient so the transition is 0 → 1.
    let (start, end) = if fa { (beta, alpha) } else { (alpha, beta) };
    let space = a.supercube(&b);
    let width = alpha.len() - space.num_literals() as usize;
    assert!(width <= 16, "burst width {width} too wide to enumerate");
    let end_cube = Cube::minterm(end);
    let _ = start;
    // Function hazard iff some x in T with f(x)=1 has a successor y in
    // T[x, end] with f(y)=0.
    for x in space.minterms() {
        if !f.eval(&x) {
            continue;
        }
        let tail = Cube::minterm(&x).supercube(&end_cube);
        for y in tail.minterms() {
            if !f.eval(&y) {
                return false;
            }
        }
    }
    true
}

/// `true` iff the transition from `alpha` to `beta` (any relation between
/// the endpoint values) has no function hazard.
pub fn transition_function_hazard_free(f: &Cover, alpha: &Bits, beta: &Bits) -> bool {
    let (fa, fb) = (f.eval(alpha), f.eval(beta));
    if fa == fb {
        let space = Cube::minterm(alpha).supercube(&Cube::minterm(beta));
        // Static: f must be constant on the space.
        if fa {
            f.covers_cube(&space)
        } else {
            disjoint(f, &space)
        }
    } else {
        dynamic_function_hazard_free(f, alpha, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    fn bits(vars: usize, m: usize) -> Bits {
        let mut b = Bits::new(vars);
        for v in 0..vars {
            b.set(v, (m >> v) & 1 == 1);
        }
        b
    }

    #[test]
    fn static_hazard_free_on_covered_space() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'b", &vars).unwrap();
        let b_space = Cube::parse("b", &vars).unwrap();
        assert!(static_function_hazard_free(&f, &b_space));
        let mixed = Cube::universe(3);
        assert!(!static_function_hazard_free(&f, &mixed));
        let off = Cube::parse("b'", &vars).unwrap();
        assert!(static_function_hazard_free(&f, &off));
    }

    #[test]
    fn figure7_dynamic_function_hazard() {
        // Paper Figure 8: f = w'xz + w'xy + xyz over (w,x,y,z).
        // The transition T[β,γ] has a function hazard when changes occur in
        // the order X↑ Z↓ Y↑.
        let vars = VarTable::from_names(["w", "x", "y", "z"]);
        let f = Cover::parse("w'xz + w'xy + xyz", &vars).unwrap();
        // β = w'x'y'z (f=0) → γ = w'xyz' (f=1): x,y,z all change.
        let beta = bits(4, 0b1000); // z=1 only
        let gamma = bits(4, 0b0110); // x=1,y=1
        assert!(!f.eval(&beta));
        assert!(f.eval(&gamma));
        // Path x↑ then z↓ then y↑ goes 0→1→0→1: function hazard.
        assert!(!dynamic_function_hazard_free(&f, &beta, &gamma));
    }

    #[test]
    fn monotone_transition_is_function_hazard_free() {
        let vars = VarTable::from_names(["a", "b"]);
        let f = Cover::parse("a + b", &vars).unwrap();
        // 00 → 11 : f goes 0 then 1 and stays 1 along any order.
        assert!(dynamic_function_hazard_free(&f, &bits(2, 0), &bits(2, 3)));
    }

    #[test]
    fn orientation_is_symmetric() {
        let vars = VarTable::from_names(["a", "b"]);
        let f = Cover::parse("a + b", &vars).unwrap();
        assert!(dynamic_function_hazard_free(&f, &bits(2, 3), &bits(2, 0)));
    }

    #[test]
    fn transition_dispatch() {
        let vars = VarTable::from_names(["a", "b"]);
        let f = Cover::parse("ab", &vars).unwrap();
        // 0→0 static across a: f zero on a'b' .. ab'? space = b'; f
        // disjoint from b' → hazard-free.
        assert!(transition_function_hazard_free(
            &f,
            &bits(2, 0),
            &bits(2, 1)
        ));
        // XOR has a function hazard on the double change 00 → 11.
        let x = Cover::parse("ab' + a'b", &vars).unwrap();
        assert!(!transition_function_hazard_free(
            &x,
            &bits(2, 0),
            &bits(2, 3)
        ));
    }

    #[test]
    #[should_panic(expected = "requires f(α) ≠ f(β)")]
    fn dynamic_requires_differing_endpoints() {
        let vars = VarTable::from_names(["a"]);
        let f = Cover::parse("a", &vars).unwrap();
        dynamic_function_hazard_free(&f, &bits(1, 1), &bits(1, 1));
    }
}
