//! Offline std-only stand-in for the [loom](https://docs.rs/loom)
//! concurrency model checker (see `vendor/README.md`).
//!
//! The real loom exhaustively explores thread interleavings of code written
//! against its shimmed `loom::sync`/`loom::thread` primitives. This
//! environment has no registry access, so this stand-in keeps the same API
//! shape while **stress-running** the model closure instead: `model(f)`
//! executes `f` many times on real OS threads, staggering the iterations
//! with spin/yield jitter so the scheduler is pushed through different
//! interleavings. That is a probabilistic approximation — it cannot prove
//! the absence of a race the way loom can — but it reliably reproduces the
//! classes of bug the workspace's model tests guard against (torn
//! publication, double-counting, lost inserts under shard contention),
//! and the tests compile unchanged against the real crate.
//!
//! The `sync`/`thread` modules re-export the `std` primitives, so the code
//! under test runs its production synchronization, not a shim.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of times [`model`] re-runs its closure. Override with the
/// `LOOM_STANDIN_ITERS` environment variable.
const DEFAULT_ITERS: usize = 256;

/// Shimmed `loom::thread`: real `std` threads.
pub mod thread {
    pub use std::thread::{current, sleep, spawn, yield_now, JoinHandle};
}

/// Shimmed `loom::sync`: real `std` synchronization primitives.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Shimmed `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::*;
    }
}

/// Shimmed `loom::hint`.
pub mod hint {
    pub use std::hint::spin_loop;
}

/// Runs `f` repeatedly, perturbing the schedule between iterations.
///
/// Mirrors `loom::model`'s signature (`F: Fn + Sync + Send + 'static`) so
/// tests written against this stand-in also compile against the real
/// crate. Panics from `f` propagate with the iteration number attached,
/// which substitutes for loom's failing-execution report.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("LOOM_STANDIN_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ITERS);
    for i in 0..iters {
        // Vary the pre-run delay so successive iterations start the model's
        // threads at different phases of the scheduler's timeslice.
        for _ in 0..(i % 7) * 11 {
            std::hint::spin_loop();
        }
        if i % 3 == 0 {
            std::thread::yield_now();
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = result {
            eprintln!("loom stand-in: model closure failed on iteration {i}/{iters}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Counter for [`model`]-style tests that want to assert every iteration
/// ran (used by the stand-in's own self-test).
#[doc(hidden)]
pub static MODEL_ITERATIONS: AtomicUsize = AtomicUsize::new(0);

#[doc(hidden)]
pub fn note_iteration() {
    MODEL_ITERATIONS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_runs_the_closure_repeatedly() {
        let before = MODEL_ITERATIONS.load(Ordering::Relaxed);
        model(note_iteration);
        assert!(MODEL_ITERATIONS.load(Ordering::Relaxed) >= before + 2);
    }

    #[test]
    fn model_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            model(|| panic!("boom"));
        });
        assert!(caught.is_err());
    }
}
