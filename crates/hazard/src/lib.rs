//! Hazard analysis algorithms for generalized fundamental-mode asynchronous
//! technology mapping — the core of §4 of *Siegel, De Micheli, Dill,
//! "Automatic Technology Mapping for Generalized Fundamental-Mode
//! Asynchronous Designs"* (CSL-TR-93-580 / DAC'93).
//!
//! The crate provides, per hazard class:
//!
//! | paper | here |
//! |---|---|
//! | `static_1_analysis` (§4.1.1) | [`static_1_analysis`], [`static_1_complete`] |
//! | static 0-hazards (§4.1.2) | [`find_sic_hazards`] (vacuous terms) |
//! | `findMicDynHaz2level` (§4.2.1) | [`find_mic_dyn_haz_2level`] |
//! | `findMicDynHazMultiLevel` (§4.2.2) | [`find_mic_dyn_haz_multilevel`] |
//! | s.i.c. dynamic hazards (§4.2.3) | [`find_sic_hazards`] (path labeling) |
//! | ternary simulation (the paper's ref. 9) | [`ternary_transition`] |
//!
//! plus two ingredients the matching step needs:
//!
//! * [`analyze_expr`] — the full per-structure characterization computed
//!   for every library element at load time;
//! * [`hazards_subset`] — the acceptance test
//!   `hazards(element) ⊆ hazards(subnetwork)` of the modified matching
//!   algorithm (Theorem 3.2).
//!
//! The eight-valued waveform algebra ([`wave_eval`]) acts as the exact
//! per-transition oracle for tree-structured expressions under the
//! arbitrary pure-delay model; the fast algorithms are cross-validated
//! against it (and against the brute-force [`oracle`] module) in the test
//! suite.
//!
//! # Examples
//!
//! ```
//! use asyncmap_bff::Expr;
//! use asyncmap_cube::VarTable;
//! use asyncmap_hazard::{analyze_expr, hazards_subset};
//!
//! let mut vars = VarTable::new();
//! // Figure 4a: a two-cube mux structure (hazardous)...
//! let two_level = Expr::parse("w*x + x'*y", &mut vars)?;
//! // ...and Figure 4b: a factored structure for the same function.
//! let factored = Expr::parse_in("(w + x')*(x + y)", &vars)?;
//!
//! let report = analyze_expr(&two_level, vars.len());
//! assert!(!report.is_hazard_free());
//!
//! // Neither structure's hazards contain the other's: the mapper may not
//! // substitute one for the other in a hazard-sensitive position.
//! assert!(!hazards_subset(&two_level, &factored, vars.len()));
//! # Ok::<(), asyncmap_bff::ParseBffError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod compare;
mod dynamic2l;
mod function;
mod kinds;
mod multilevel;
pub mod oracle;
mod repair;
mod reverify;
mod sic;
mod static1;
mod ternary_sim;
mod wave;

pub use analysis::{analyze_cover, analyze_cover_fast, analyze_expr, analyze_expr_fast};
pub use compare::{
    hazards_subset, hazards_subset_exhaustive, hazards_subset_guided, EXHAUSTIVE_VAR_LIMIT,
};
pub use dynamic2l::{find_mic_dyn_haz_2level, irredundant_intersections, mic_dynamic_hazard_on};
pub use function::{
    disjoint, dynamic_function_hazard_free, static_function_hazard_free,
    transition_function_hazard_free,
};
pub use kinds::{DisplayHazard, Hazard, HazardKind, HazardReport};
pub use multilevel::{
    confirm_on_structure, dynamic_hazard_on_structure, find_mic_dyn_haz_multilevel,
    find_mic_dyn_haz_multilevel_traced, multilevel_flatten_traced,
};
pub use repair::{prune_pulsing_redundancy, repair_static1, Repair};
pub use reverify::{reverify_containment, ContainmentReverification, ORACLE_VAR_LIMIT};
pub use sic::{find_sic_hazards, find_sic_hazards_raw, SicAnalysis};
pub use static1::{
    is_static_1_hazard_free, static1_subset, static_1_analysis, static_1_complete, static_1_free_on,
};
pub use ternary_sim::{has_static_hazard, ternary_transition, TernaryOutcome};
pub use wave::{transition_has_hazard, wave_eval, Wave};
