//! Criterion microbenchmarks for the §4 hazard-analysis algorithms: the
//! paper's fast procedures against the brute-force oracles they replace.

use asyncmap_bff::Expr;
use asyncmap_cube::{Cover, VarTable};
use asyncmap_hazard::oracle::{brute_mic_dynamic_transitions, brute_static1_transitions};
use asyncmap_hazard::{
    analyze_expr, find_mic_dyn_haz_2level, static_1_analysis, static_1_complete,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn figure10_cover() -> (Cover, VarTable) {
    let vars = VarTable::from_names(["w", "x", "y", "z"]);
    let f = Cover::parse("w'xz + w'xy + xyz", &vars).unwrap();
    (f, vars)
}

fn benchmark_cover() -> Cover {
    // A realistic mapper workload: one output of the pe-send-ifc
    // controller.
    let eqs = asyncmap_burst::benchmark("pe-send-ifc");
    eqs.equations
        .iter()
        .max_by_key(|(_, c)| c.len())
        .map(|(_, c)| c.clone())
        .expect("nonempty")
}

fn bench_static1(c: &mut Criterion) {
    let (fig, _) = figure10_cover();
    let big = benchmark_cover();
    let mut g = c.benchmark_group("static1");
    g.bench_function("single_pass/figure10", |b| {
        b.iter(|| static_1_analysis(black_box(&fig)))
    });
    g.bench_function("complete/figure10", |b| {
        b.iter(|| static_1_complete(black_box(&fig)))
    });
    g.bench_function("brute_oracle/figure10", |b| {
        b.iter(|| brute_static1_transitions(black_box(&fig)))
    });
    g.bench_function("single_pass/pe-send-ifc", |b| {
        b.iter(|| static_1_analysis(black_box(&big)))
    });
    g.bench_function("complete/pe-send-ifc", |b| {
        b.iter(|| static_1_complete(black_box(&big)))
    });
    g.finish();
}

fn bench_dynamic(c: &mut Criterion) {
    let (fig, _) = figure10_cover();
    let mut g = c.benchmark_group("mic_dynamic");
    g.bench_function("findMicDynHaz2level/figure10", |b| {
        b.iter(|| find_mic_dyn_haz_2level(black_box(&fig)))
    });
    g.bench_function("brute_oracle/figure10", |b| {
        b.iter(|| brute_mic_dynamic_transitions(black_box(&fig)))
    });
    g.finish();
}

fn bench_cell_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell_analysis");
    let cells = [
        ("MUX2", "s*a + s'*b"),
        ("MUX4", "t'*s'*a + t'*s*b + t*s'*c + t*s*d"),
        ("AOI2222", "(a*b + c*d + e*f + g*h)'"),
    ];
    for (name, bff) in cells {
        let mut vars = VarTable::new();
        let expr = Expr::parse(bff, &mut vars).unwrap();
        let n = vars.len();
        g.bench_function(format!("analyze_expr/{name}"), |b| {
            b.iter(|| analyze_expr(black_box(&expr), n))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_static1, bench_dynamic, bench_cell_analysis
}
criterion_main!(benches);
