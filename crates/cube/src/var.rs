//! Variable identifiers and the name table mapping them to strings.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a Boolean variable inside a [`VarTable`].
///
/// The numeric value is the bit position used by [`crate::Cube`]'s
/// `USED`/`PHASE` vectors.
///
/// # Examples
///
/// ```
/// use asyncmap_cube::{VarId, VarTable};
/// let mut vars = VarTable::new();
/// let a = vars.intern("a");
/// assert_eq!(a, VarId(0));
/// assert_eq!(vars.name(a), "a");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

impl VarId {
    /// The bit index of this variable.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A bidirectional map between variable names and [`VarId`]s.
///
/// Every cube-space (a function's input variables) is described by one
/// `VarTable`; cubes built against the table use `table.len()` bits.
///
/// # Examples
///
/// ```
/// use asyncmap_cube::VarTable;
/// let mut vars = VarTable::new();
/// let a = vars.intern("a");
/// let b = vars.intern("b");
/// assert_eq!(vars.intern("a"), a); // idempotent
/// assert_eq!(vars.len(), 2);
/// assert_eq!(vars.lookup("b"), Some(b));
/// assert_eq!(vars.lookup("zz"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarTable {
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table with variables named by `names`, in order.
    ///
    /// # Panics
    ///
    /// Panics if `names` contains duplicates.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut t = Self::new();
        for n in names {
            let n = n.into();
            assert!(
                t.lookup(&n).is_none(),
                "duplicate variable name {n:?} in VarTable::from_names"
            );
            t.intern(&n);
        }
        t
    }

    /// Returns the id for `name`, creating a fresh variable if unseen.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = VarId(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Returns the id for `name` if it exists.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this table.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.0]
    }

    /// Number of variables in the table.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if the table holds no variables.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over `(VarId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VarId(i), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_sequential_ids() {
        let mut t = VarTable::new();
        assert_eq!(t.intern("x"), VarId(0));
        assert_eq!(t.intern("y"), VarId(1));
        assert_eq!(t.intern("x"), VarId(0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn from_names_orders_ids() {
        let t = VarTable::from_names(["w", "x", "y", "z"]);
        assert_eq!(t.lookup("w"), Some(VarId(0)));
        assert_eq!(t.lookup("z"), Some(VarId(3)));
        assert_eq!(t.name(VarId(2)), "y");
    }

    #[test]
    #[should_panic(expected = "duplicate variable name")]
    fn from_names_rejects_duplicates() {
        VarTable::from_names(["a", "a"]);
    }

    #[test]
    fn iter_yields_all() {
        let t = VarTable::from_names(["a", "b"]);
        let v: Vec<_> = t.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(v, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
