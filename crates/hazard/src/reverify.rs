//! Independent re-verification of the Theorem 3.2 acceptance condition
//! `hazards(candidate) ⊆ hazards(reference)` for a *completed* binding.
//!
//! The matcher decides this condition once, on the fast path, while
//! covering ([`hazards_subset`]). This module re-derives the same verdict
//! through every analysis the crate has — the exhaustive transition sweep,
//! the descriptor-guided comparison, the exact static-1 cube-adjacency
//! subset test on the flattened covers, and (on small supports) the
//! brute-force minterm-pair oracle — and reports them side by side, so a
//! post-hoc checker can both re-accept the binding and detect
//! disagreement between methods. Nothing here is consulted by the mapper
//! itself.

use crate::compare::{hazards_subset_exhaustive, hazards_subset_guided, EXHAUSTIVE_VAR_LIMIT};
use crate::oracle::brute_static1_transitions;
use crate::static1::static1_subset;
use asyncmap_bff::{flatten, Expr};

/// Variable-count limit for the brute-force oracle cross-check; the oracle
/// enumerates all ordered minterm pairs, so keep the space tiny.
pub const ORACLE_VAR_LIMIT: usize = 6;

/// The verdicts of each independent re-check of
/// `hazards(candidate) ⊆ hazards(reference)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainmentReverification {
    /// Size of the shared variable space.
    pub nvars: usize,
    /// Exhaustive transition-sweep verdict (exact under the pure-delay
    /// model); `None` when `nvars > EXHAUSTIVE_VAR_LIMIT`.
    pub exhaustive: Option<bool>,
    /// Descriptor-guided verdict (may be conservatively `false`).
    pub analytic: bool,
    /// Exact static-1 containment via cube adjacency on the flattened
    /// covers — a necessary condition for full containment.
    pub static1_adjacency: bool,
    /// Brute-force oracle's static-1 containment verdict; `None` when
    /// `nvars > ORACLE_VAR_LIMIT`.
    pub oracle_static1: Option<bool>,
}

impl ContainmentReverification {
    /// The overall verdict: the exhaustive sweep when available (it is
    /// exact), otherwise the guided comparison.
    pub fn accepted(&self) -> bool {
        self.exhaustive.unwrap_or(self.analytic)
    }

    /// `true` iff no method contradicts another. The guided comparison is
    /// allowed to be conservative (reject where the exhaustive sweep
    /// accepts); every other divergence — guided accepting what the sweep
    /// rejects, the adjacency test and the oracle disagreeing, or a
    /// static-1 violation surviving an exhaustive accept — indicates a bug
    /// in one of the analyses.
    pub fn methods_agree(&self) -> bool {
        if let Some(oracle) = self.oracle_static1 {
            if oracle != self.static1_adjacency {
                return false;
            }
        }
        if let Some(exhaustive) = self.exhaustive {
            if self.analytic && !exhaustive {
                return false;
            }
            if exhaustive && !self.static1_adjacency {
                return false;
            }
        }
        true
    }
}

/// Re-verifies `hazards(candidate) ⊆ hazards(reference)` through every
/// applicable analysis. Both expressions must compute the same function
/// over the same `nvars`-variable space (the Theorem 3.2 setting); the
/// verdicts are meaningless otherwise.
pub fn reverify_containment(
    candidate: &Expr,
    reference: &Expr,
    nvars: usize,
) -> ContainmentReverification {
    let candidate_flat = flatten(candidate, nvars);
    let reference_flat = flatten(reference, nvars);

    let exhaustive = (nvars <= EXHAUSTIVE_VAR_LIMIT)
        .then(|| hazards_subset_exhaustive(candidate, reference, nvars));

    let report = crate::analyze_expr(candidate, nvars);
    let analytic = hazards_subset_guided(&report, candidate, reference, nvars);

    let static1_adjacency = static1_subset(&candidate_flat.cover, &reference_flat.cover);

    let oracle_static1 = (nvars <= ORACLE_VAR_LIMIT).then(|| {
        let cand = brute_static1_transitions(&candidate_flat.cover);
        let refs = brute_static1_transitions(&reference_flat.cover);
        cand.iter().all(|pair| refs.contains(pair))
    });

    ContainmentReverification {
        nvars,
        exhaustive,
        analytic,
        static1_adjacency,
        oracle_static1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    #[test]
    fn identical_structures_reverify_cleanly() {
        let mut vars = VarTable::new();
        let e = Expr::parse("w*x + x'*y", &mut vars).unwrap();
        let r = reverify_containment(&e, &e, vars.len());
        assert!(r.accepted());
        assert!(r.methods_agree());
        assert_eq!(r.exhaustive, Some(true));
        assert_eq!(r.oracle_static1, Some(true));
    }

    #[test]
    fn figure3_violation_caught_by_every_method() {
        // Candidate ab + a'c drops the consensus cube of ab + a'c + bc:
        // a static-1 hazard appears, so every analysis must reject.
        let mut vars = VarTable::new();
        let original = Expr::parse("a*b + a'*c + b*c", &mut vars).unwrap();
        let candidate = Expr::parse_in("a*b + a'*c", &vars).unwrap();
        let r = reverify_containment(&candidate, &original, vars.len());
        assert!(!r.accepted());
        assert!(r.methods_agree());
        assert_eq!(r.exhaustive, Some(false));
        assert!(!r.analytic);
        assert!(!r.static1_adjacency);
        assert_eq!(r.oracle_static1, Some(false));
    }

    #[test]
    fn hazard_free_tree_accepted_over_sop() {
        let mut vars = VarTable::new();
        let tree = Expr::parse("a*(b + c)", &mut vars).unwrap();
        let sop = Expr::parse_in("a*b + a*c", &vars).unwrap();
        let r = reverify_containment(&tree, &sop, vars.len());
        assert!(r.accepted());
        assert!(r.methods_agree());
    }

    #[test]
    fn static0_difference_rejected() {
        // Figure 4b has a vacuous-term static-0 hazard 4a lacks; only the
        // transition-level analyses see it (static-1 adjacency passes).
        let mut vars = VarTable::new();
        let factored = Expr::parse("(w + x')*(x + y)", &mut vars).unwrap();
        let two_level = Expr::parse_in("w*x + x'*y", &vars).unwrap();
        let r = reverify_containment(&factored, &two_level, vars.len());
        assert!(!r.accepted());
        assert!(r.methods_agree());
    }
}
