//! Criterion benchmark behind Table 2: library initialization for the
//! synchronous mapper (construction + matcher signatures) vs the
//! asynchronous mapper (the same plus hazard annotation of every cell).

use asyncmap_core::{HazardPolicy, Matcher};
use asyncmap_library::{builtin, Library};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn build(name: &str) -> Library {
    match name {
        "LSI9K" => builtin::lsi9k(),
        "CMOS3" => builtin::cmos3(),
        "GDT" => builtin::gdt(),
        _ => builtin::actel(),
    }
}

fn bench_init(c: &mut Criterion) {
    let mut g = c.benchmark_group("library_init");
    for name in ["LSI9K", "CMOS3", "GDT", "Actel"] {
        g.bench_function(format!("sync/{name}"), |b| {
            b.iter(|| {
                let lib = build(name);
                let m = Matcher::new(&lib, HazardPolicy::Ignore);
                black_box(m.library().len())
            })
        });
        g.bench_function(format!("async/{name}"), |b| {
            b.iter(|| {
                let mut lib = build(name);
                lib.annotate_hazards();
                let m = Matcher::new(&lib, HazardPolicy::SubsetCheck);
                black_box(m.library().len())
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_init
}
criterion_main!(benches);
