//! The four CI benchmarks must analyze clean — zero errors — against
//! their own burst-mode specs, on the same library pairing the
//! fingerprint gate uses. Notes (essential-hazard candidates) are
//! expected and allowed; errors are not.

use asyncmap_burst::{benchmark, benchmark_spec};
use asyncmap_core::{async_tmap, MapOptions};
use asyncmap_fma::{analyze_design_with_spec, FmaCache};
use asyncmap_library::{builtin, Library};

fn check(name: &str, mut lib: Library) {
    lib.annotate_hazards();
    let eqs = benchmark(name);
    let spec = benchmark_spec(name);
    let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    let report = analyze_design_with_spec(&design, &lib, &spec);
    assert_eq!(
        report.num_errors(),
        0,
        "{name} must analyze clean:\n{}",
        report.render()
    );
    assert_eq!(report.counters.cones, design.cones.len());
    assert!(
        report.counters.spec_transitions > 0,
        "{name}: spec phase must have run"
    );
    assert!(
        report.counters.feedback_pairs > 0,
        "{name}: feedback variables must pair up"
    );
}

#[test]
fn scsi_analyzes_clean() {
    check("scsi", builtin::lsi9k());
}

#[test]
fn abcs_analyzes_clean() {
    check("abcs", builtin::lsi9k());
}

#[test]
fn pe_send_ifc_analyzes_clean() {
    check("pe-send-ifc", builtin::actel());
}

#[test]
fn dme_analyzes_clean() {
    check("dme", builtin::actel());
}

#[test]
fn warm_cache_reuses_every_cone_on_identical_reanalysis() {
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let eqs = benchmark("scsi");
    let spec = benchmark_spec("scsi");
    let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    let mut cache = FmaCache::new();
    let cold = asyncmap_fma::analyze_design_with_spec_cached(&design, &lib, &spec, &mut cache);
    assert_eq!(cold.num_errors(), 0, "{}", cold.render());
    let warm = asyncmap_fma::analyze_design_with_spec_cached(&design, &lib, &spec, &mut cache);
    assert_eq!(warm.counters.cones_reused, warm.counters.cones);
}
