//! Equivalence of the word-parallel matcher kernels against their scalar
//! generic counterparts: truth tables, dependence tests, input signatures
//! and — end to end — the match lists themselves (same cells, same pin
//! bindings, same order, same hazard verdicts).

use asyncmap_bff::Expr;
use asyncmap_core::truth;
use asyncmap_core::{
    depends_on, depends_on_words, enumerate_clusters, input_signature, input_signature_words,
    truth_table_of, truth_table_of_generic, ClusterLimits, HazardPolicy, Matcher,
};
use asyncmap_cube::{Cover, Cube, Phase, VarId, VarTable};
use asyncmap_library::builtin;
use asyncmap_network::{async_tech_decomp, partition, EquationSet};
use proptest::prelude::*;

/// Random depth-bounded expression over `nvars` variables, driven by a
/// proptest-supplied byte stream so every case is reproducible.
fn expr_from_stream(nvars: usize, stream: &[u8], pos: &mut usize, depth: usize) -> Expr {
    fn next(stream: &[u8], pos: &mut usize, bound: usize) -> usize {
        let b = stream[*pos % stream.len()] as usize;
        *pos += 1;
        b % bound
    }
    if depth == 0 || next(stream, pos, 4) == 0 {
        let v = Expr::Var(VarId(next(stream, pos, nvars)));
        return if next(stream, pos, 2) == 1 {
            v.not()
        } else {
            v
        };
    }
    let arity = 2 + next(stream, pos, 2);
    let args: Vec<Expr> = (0..arity)
        .map(|_| expr_from_stream(nvars, stream, pos, depth - 1))
        .collect();
    if next(stream, pos, 2) == 1 {
        Expr::and(args)
    } else {
        Expr::or(args)
    }
}

prop_compose! {
    fn arb_expr(nvars: usize)(stream in prop::collection::vec(any::<u8>(), 32..64)) -> Expr {
        let mut pos = 0;
        expr_from_stream(nvars, &stream, &mut pos, 3)
    }
}

const NVARS: usize = 4;

prop_compose! {
    fn arb_cube()(used in 1u8..16, phase in 0u8..16) -> Cube {
        let mut lits = Vec::new();
        for v in 0..NVARS {
            if (used >> v) & 1 == 1 {
                let p = if (phase >> v) & 1 == 1 { Phase::Pos } else { Phase::Neg };
                lits.push((VarId(v), p));
            }
        }
        Cube::from_literals(NVARS, lits)
    }
}

prop_compose! {
    fn arb_cover()(cubes in prop::collection::vec(arb_cube(), 1..5)) -> Cover {
        Cover::from_cubes(NVARS, cubes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truth_tables_agree_small(e in arb_expr(5)) {
        let fast = truth_table_of(&e, 5);
        let generic = truth_table_of_generic(&e, 5);
        prop_assert_eq!(&fast, &generic);
        // The packed u64 table must agree with both.
        let packed = truth::truth6_of(&e, 5);
        prop_assert_eq!(fast.words()[0], packed);
    }

    #[test]
    fn truth_tables_agree_wide(e in arb_expr(8)) {
        prop_assert_eq!(truth_table_of(&e, 8), truth_table_of_generic(&e, 8));
    }

    #[test]
    fn dependence_and_signatures_agree(e in arb_expr(5)) {
        let n = 5;
        let table = truth_table_of_generic(&e, n);
        let packed = truth::truth6_of(&e, n);
        for v in 0..n {
            let dep = depends_on(&table, n, v);
            prop_assert_eq!(depends_on_words(&table, v), dep, "depends_on_words var {}", v);
            prop_assert_eq!(truth::depends6(packed, n, v), dep, "depends6 var {}", v);
            let sig = input_signature(&table, n, v);
            prop_assert_eq!(input_signature_words(&table, v), sig, "sig_words var {}", v);
            prop_assert_eq!(truth::input_signature6(packed, n, v), sig, "sig6 var {}", v);
        }
    }

    #[test]
    fn match_lists_identical_with_hazard_filter(cover in arb_cover()) {
        if cover.is_tautology() {
            return Ok(());
        }
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), cover.clone())]);
        let net = async_tech_decomp(&eqs);
        // Actel's mux modules exercise the hazard-containment verdicts;
        // LSI9K covers the plain-gate bulk.
        for mut lib in [builtin::lsi9k(), builtin::actel()] {
            lib.annotate_hazards();
            let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
            for cone in &partition(&net) {
                let clusters = enumerate_clusters(&net, cone, &ClusterLimits::default());
                for list in clusters.values() {
                    for cluster in list {
                        prop_assert_eq!(
                            matcher.find_matches(cluster),
                            matcher.find_matches_generic(cluster),
                            "match lists diverge in {}",
                            lib.name()
                        );
                    }
                }
            }
        }
    }
}
