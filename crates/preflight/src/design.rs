//! Design-side qualification: equation-set sanity and BLIF structural
//! findings.

use crate::PreflightReport;
use asyncmap_blif::{BlifNetlist, CollapseErrorKind, CollapseLimits};
use asyncmap_core::ClusterLimits;
use asyncmap_network::EquationSet;
use asyncmap_report::Severity;
use std::collections::HashSet;

/// Support width past which mapping cost becomes a concern (the exact
/// hazard machinery sweeps transition spaces exponential in the support).
const WIDE_SUPPORT_WARNING: usize = 24;

/// Checks an equation set: duplicate output names, support widths past
/// the cluster leaf cap, unused primary inputs.
pub fn preflight_design(eqs: &EquationSet) -> PreflightReport {
    let mut report = PreflightReport::default();
    report.counters.equations = eqs.equations.len();
    let leaf_cap = ClusterLimits::default().max_leaves;

    let mut seen: HashSet<&str> = HashSet::new();
    let mut used = vec![false; eqs.inputs.len()];
    for (name, cover) in &eqs.equations {
        if !seen.insert(name) {
            report.push(
                Severity::Error,
                "design.multi-driven",
                format!("equation {name}"),
                "two equations drive the same output name".into(),
            );
        }
        let support = cover.support();
        for v in &support {
            used[v.index()] = true;
        }
        if support.len() > WIDE_SUPPORT_WARNING {
            report.push(
                Severity::Warning,
                "design.wide-support",
                format!("equation {name}"),
                format!(
                    "support of {} inputs: exact hazard analysis over this cone \
                     will be slow or fall back to conservative verdicts",
                    support.len()
                ),
            );
        } else if support.len() > leaf_cap {
            report.push(
                Severity::Info,
                "design.wide-support",
                format!("equation {name}"),
                format!(
                    "support of {} inputs exceeds the cluster leaf cap of \
                     {leaf_cap}; every cover of this cone uses multiple cells",
                    support.len()
                ),
            );
        }
    }
    for (i, flag) in used.iter().enumerate() {
        if !flag {
            report.push(
                Severity::Info,
                "design.unused-input",
                format!("input {}", eqs.inputs.name(asyncmap_cube::VarId(i))),
                "no equation depends on this primary input".into(),
            );
        }
    }
    report
}

/// Checks a BLIF netlist structurally, and — when it is sound — collapses
/// it and runs the equation-set checks on the result. Returns the
/// collapsed equations so callers qualify and map the same object; `None`
/// when a structural error makes collapse impossible.
pub fn preflight_blif(net: &BlifNetlist) -> (PreflightReport, Option<EquationSet>) {
    let mut report = PreflightReport::default();
    let s = net.structure();
    for n in &s.undriven {
        report.push(
            Severity::Error,
            "design.undriven",
            format!("net {n}"),
            "read by the netlist but never driven".into(),
        );
    }
    for n in &s.multi_driven {
        report.push(
            Severity::Error,
            "design.multi-driven",
            format!("net {n}"),
            "more than one driver".into(),
        );
    }
    for n in &s.on_cycle {
        report.push(
            Severity::Error,
            "design.cycle",
            format!("net {n}"),
            "on a combinational cycle: fundamental-mode feedback must come \
             from the synthesis flow, not the netlist"
                .into(),
        );
    }
    for latch in &net.latches {
        report.push(
            Severity::Error,
            "design.latch",
            format!("net {}", latch.output),
            format!(
                ".latch at line {}: the fundamental-mode mapper is combinational",
                latch.line
            ),
        );
    }
    for n in &s.unused {
        report.push(
            Severity::Info,
            "design.unused",
            format!("net {n}"),
            "driven but read by nothing; its logic will be dropped".into(),
        );
    }
    if net.outputs.is_empty() {
        report.push(
            Severity::Error,
            "design.no-outputs",
            format!("model {}", net.model),
            "no .outputs declared".into(),
        );
    }
    if !s.is_sound() || !net.latches.is_empty() || net.outputs.is_empty() {
        return (report, None);
    }

    match net.to_equations(&CollapseLimits::default()) {
        Ok(eqs) => {
            report.merge(preflight_design(&eqs));
            (report, Some(eqs))
        }
        Err(e) => {
            let code = match e.kind {
                CollapseErrorKind::ConstantOutput => "design.constant-output",
                CollapseErrorKind::CubeBlowup => "design.collapse-blowup",
                _ => "design.collapse",
            };
            report.push(
                Severity::Error,
                code,
                format!("net {}", e.signal),
                e.message,
            );
            (report, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_blif::parse_blif;

    fn blif(text: &str) -> BlifNetlist {
        parse_blif(text, "t").unwrap()
    }

    #[test]
    fn benchmarks_are_error_free() {
        for def in asyncmap_burst::BENCHMARKS {
            let eqs = asyncmap_burst::benchmark(def.name);
            let report = preflight_design(&eqs);
            assert_eq!(report.num_errors(), 0, "{}: {}", def.name, report.render());
        }
    }

    #[test]
    fn clean_blif_collapses() {
        let (report, eqs) = preflight_blif(&blif(
            ".inputs a b c\n.outputs f\n.names a b t\n11 1\n.names t c f\n1- 1\n-1 1\n",
        ));
        assert_eq!(report.num_errors(), 0, "{}", report.render());
        assert_eq!(eqs.unwrap().equations.len(), 1);
    }

    #[test]
    fn cycle_is_an_error_with_the_expected_code() {
        let (report, eqs) = preflight_blif(&blif(
            ".inputs a\n.outputs f\n.names a x u\n11 1\n.names u x\n1 1\n.names a f\n1 1\n",
        ));
        assert!(eqs.is_none());
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "design.cycle" && f.severity == Severity::Error));
    }

    #[test]
    fn latch_undriven_and_constant_codes() {
        let (r, _) = preflight_blif(&blif(".inputs d\n.outputs q\n.latch d q\n"));
        assert!(r.findings.iter().any(|f| f.code == "design.latch"));

        let (r, _) = preflight_blif(&blif(".inputs a\n.outputs f\n.names ghost f\n1 1\n"));
        assert!(r.findings.iter().any(|f| f.code == "design.undriven"));

        let (r, _) = preflight_blif(&blif(".inputs a\n.outputs f\n.names f\n1\n"));
        assert!(r
            .findings
            .iter()
            .any(|f| f.code == "design.constant-output"));
    }

    #[test]
    fn unused_logic_is_a_note_not_an_error() {
        let (report, eqs) = preflight_blif(&blif(
            ".inputs a b\n.outputs f\n.names a b f\n11 1\n.names a b dead\n01 1\n",
        ));
        assert_eq!(report.num_errors(), 0);
        assert!(report.notes.iter().any(|f| f.code == "design.unused"));
        assert!(eqs.is_some());
    }

    #[test]
    fn duplicate_equation_names_are_an_error() {
        let eqs = asyncmap_burst::benchmark("dme");
        let mut dup = eqs.equations.clone();
        dup.push(dup[0].clone());
        let doubled = EquationSet::new(eqs.inputs.clone(), dup);
        let report = preflight_design(&doubled);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "design.multi-driven" && f.severity == Severity::Error));
    }
}
