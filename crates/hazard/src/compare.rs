//! Hazard-behavior containment between two structures of the same function
//! — the acceptance test of the modified matching algorithm (paper §3.2.2
//! and Theorem 3.2): a hazardous library element may replace a subnetwork
//! only if `hazards(element) ⊆ hazards(subnetwork)`.

use crate::static1::static1_subset;
use crate::wave::wave_eval;
use crate::HazardReport;
use asyncmap_bff::{flatten, Expr};
use asyncmap_cube::{Bits, Cube};

/// Variable-count limit for the exhaustive transition sweep
/// ([`hazards_subset_exhaustive`]); `4^n` transition pairs are examined.
pub const EXHAUSTIVE_VAR_LIMIT: usize = 8;

/// Per-descriptor minterm-pair cap for the guided comparison.
const GUIDED_PAIR_CAP: u64 = 4096;

/// Decides `hazards(candidate) ⊆ hazards(reference)` for two structures of
/// the same function over the same `nvars`-variable space.
///
/// Uses the exhaustive transition sweep when the space is small (exact
/// under the pure-delay model) and falls back to the descriptor-guided
/// comparison otherwise.
pub fn hazards_subset(candidate: &Expr, reference: &Expr, nvars: usize) -> bool {
    if nvars <= EXHAUSTIVE_VAR_LIMIT {
        hazards_subset_exhaustive(candidate, reference, nvars)
    } else {
        let report = crate::analyze_expr(candidate, nvars);
        hazards_subset_guided(&report, candidate, reference, nvars)
    }
}

/// Exhaustive form: sweeps every ordered transition pair `(α, β)` and
/// requires that whenever `candidate` can glitch, `reference` can glitch on
/// the same burst. Function hazards excite both structures equally (they
/// compute the same function), so the comparison effectively ranges over
/// logic hazards.
///
/// # Panics
///
/// Panics if `nvars > EXHAUSTIVE_VAR_LIMIT`.
pub fn hazards_subset_exhaustive(candidate: &Expr, reference: &Expr, nvars: usize) -> bool {
    assert!(
        nvars <= EXHAUSTIVE_VAR_LIMIT,
        "exhaustive sweep limited to {EXHAUSTIVE_VAR_LIMIT} variables"
    );
    let size = 1usize << nvars;
    for a in 0..size {
        let from = index_bits(nvars, a);
        for b in 0..size {
            if a == b {
                continue;
            }
            let to = index_bits(nvars, b);
            let wc = wave_eval(candidate, &from, &to);
            if wc.hazard && !wave_eval(reference, &from, &to).hazard {
                return false;
            }
        }
    }
    true
}

/// Descriptor-guided form: checks each hazard descriptor of `candidate`
/// against `reference`, rejecting conservatively when enumeration limits
/// are exceeded.
pub fn hazards_subset_guided(
    candidate_report: &HazardReport,
    candidate: &Expr,
    reference: &Expr,
    nvars: usize,
) -> bool {
    // Static-1: exact containment via the flattened covers.
    let ref_flat = flatten(reference, nvars).cover;
    if !static1_subset(&candidate_report.flat, &ref_flat) {
        return false;
    }
    // m.i.c. dynamic: every hazardous endpoint pair of the candidate must
    // glitch the reference too.
    for h in &candidate_report.dynamic_mic {
        let crate::Hazard::DynamicMic {
            zero_end, one_end, ..
        } = h
        else {
            continue;
        };
        if !pairs_subset(candidate, reference, zero_end, one_end) {
            return false;
        }
    }
    // Static-0 and s.i.c. dynamic: sweep the sensitizing conditions.
    for h in candidate_report
        .static0
        .iter()
        .chain(&candidate_report.dynamic_sic)
    {
        let (var, condition) = match h {
            crate::Hazard::Static0 { var, condition } => (var, condition),
            crate::Hazard::DynamicSic { var, condition, .. } => (var, condition),
            _ => continue,
        };
        for cube in condition.cubes() {
            if cube.num_minterms() > GUIDED_PAIR_CAP {
                return false; // conservative
            }
            for ctx in cube.minterms() {
                let mut from = ctx.clone();
                from.set(var.index(), false);
                let mut to = ctx;
                to.set(var.index(), true);
                let wc = wave_eval(candidate, &from, &to);
                if wc.hazard && !wave_eval(reference, &from, &to).hazard {
                    return false;
                }
            }
        }
    }
    true
}

fn pairs_subset(candidate: &Expr, reference: &Expr, zero_end: &Cube, one_end: &Cube) -> bool {
    if zero_end
        .num_minterms()
        .saturating_mul(one_end.num_minterms())
        > GUIDED_PAIR_CAP
    {
        return false; // conservative
    }
    for alpha in zero_end.minterms() {
        for beta in one_end.minterms() {
            let wc = wave_eval(candidate, &alpha, &beta);
            if wc.hazard && !wave_eval(reference, &alpha, &beta).hazard {
                return false;
            }
        }
    }
    true
}

fn index_bits(nvars: usize, m: usize) -> Bits {
    let mut b = Bits::new(nvars);
    for v in 0..nvars {
        b.set(v, (m >> v) & 1 == 1);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    #[test]
    fn identical_structures_are_accepted() {
        let mut vars = VarTable::new();
        let e = Expr::parse("w*x + x'*y", &mut vars).unwrap();
        assert!(hazards_subset(&e, &e, vars.len()));
    }

    #[test]
    fn figure3_rejection() {
        // Candidate ab + a'c cannot replace ab + a'c + bc: dropping the
        // redundant consensus cube introduces a static-1 hazard (Figure 3).
        let mut vars = VarTable::new();
        let original = Expr::parse("a*b + a'*c + b*c", &mut vars).unwrap();
        let candidate = Expr::parse_in("a*b + a'*c", &vars).unwrap();
        assert!(!hazards_subset(&candidate, &original, vars.len()));
        // The reverse also fails, more subtly: the added bc gate pulses on
        // b↑c↓ bursts (e.g. a=1, b:0→1, c:1→0), an m.i.c. dynamic hazard
        // the two-cube structure does not have. Neither replacement is
        // hazard-safe in general — exactly why the matcher must check.
        assert!(!hazards_subset(&original, &candidate, vars.len()));
    }

    #[test]
    fn figure4_structures() {
        // The two structures hazard-differ in both directions: 4a has a
        // static-1 hazard 4b lacks, 4b has a static-0 hazard 4a lacks.
        let mut vars = VarTable::new();
        let two_level = Expr::parse("w*x + x'*y", &mut vars).unwrap();
        let factored = Expr::parse_in("(w + x')*(x + y)", &vars).unwrap();
        // 4a has the static-1 hazard on wy which 4b lacks.
        assert!(!hazards_subset(&two_level, &factored, vars.len()));
        // 4b has a static-0 hazard (vacuous x'x) that 4a lacks, so neither
        // direction holds in general.
        assert!(!hazards_subset(&factored, &two_level, vars.len()));
    }

    #[test]
    fn hazard_free_candidate_always_accepted() {
        let mut vars = VarTable::new();
        // Single complex gate: hazard-free implementation of a*b + a*c?
        // Use a tree with single occurrences: a*(b + c).
        let tree = Expr::parse("a*(b + c)", &mut vars).unwrap();
        let sop = Expr::parse_in("a*b + a*c", &vars).unwrap();
        assert!(hazards_subset(&tree, &sop, vars.len()));
    }

    #[test]
    fn guided_agrees_with_exhaustive() {
        let mut vars = VarTable::new();
        let pairs = [
            ("w*x + x'*y", "(w + x')*(x + y)"),
            ("a*b + a'*c", "a*b + a'*c + b*c"),
            ("s*a + s'*b", "s*a + s'*b + a*b"),
            ("a*(b + c)", "a*b + a*c"),
        ];
        for (left, right) in pairs {
            let l = Expr::parse(left, &mut vars).unwrap();
            let r = Expr::parse(right, &mut vars).unwrap();
            let n = vars.len();
            let report_l = crate::analyze_expr(&l, n);
            let report_r = crate::analyze_expr(&r, n);
            assert_eq!(
                hazards_subset_exhaustive(&l, &r, n),
                hazards_subset_guided(&report_l, &l, &r, n),
                "guided/exhaustive disagree on ({left}) ⊆ ({right})"
            );
            assert_eq!(
                hazards_subset_exhaustive(&r, &l, n),
                hazards_subset_guided(&report_r, &r, &l, n),
                "guided/exhaustive disagree on ({right}) ⊆ ({left})"
            );
        }
    }
}
