//! Collapses a multi-level BLIF node graph into two-level SOP equations
//! over primary inputs — the [`EquationSet`] shape the technology mapper
//! consumes.

use crate::BlifNetlist;
use asyncmap_cube::{Cover, Cube, Phase, VarTable};
use asyncmap_network::EquationSet;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Resource cap for the collapse. Collapsing is worst-case exponential in
/// the netlist depth; the cap turns blowup into a typed error instead of
/// an out-of-memory kill.
#[derive(Debug, Clone, Copy)]
pub struct CollapseLimits {
    /// Maximum number of cubes any intermediate cover may reach.
    pub max_cubes: usize,
}

impl Default for CollapseLimits {
    fn default() -> Self {
        CollapseLimits { max_cubes: 20_000 }
    }
}

/// Why the collapse refused, machine-readably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollapseErrorKind {
    /// The netlist has latches; the fundamental-mode mapper is
    /// combinational.
    Latch,
    /// A net is read but never driven.
    Undriven,
    /// A net has more than one driver.
    MultiDriven,
    /// The node graph has a combinational cycle.
    Cycle,
    /// The model declares no `.outputs`.
    NoOutputs,
    /// A primary output collapsed to a constant function.
    ConstantOutput,
    /// An intermediate cover exceeded [`CollapseLimits::max_cubes`].
    CubeBlowup,
}

impl fmt::Display for CollapseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CollapseErrorKind::Latch => "netlist has latches",
            CollapseErrorKind::Undriven => "undriven net",
            CollapseErrorKind::MultiDriven => "multiply-driven net",
            CollapseErrorKind::Cycle => "combinational cycle",
            CollapseErrorKind::NoOutputs => "no primary outputs",
            CollapseErrorKind::ConstantOutput => "constant primary output",
            CollapseErrorKind::CubeBlowup => "cube blowup",
        })
    }
}

/// Error produced when a netlist cannot be collapsed to equations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapseError {
    /// Machine-readable failure class.
    pub kind: CollapseErrorKind,
    /// The signal the failure is anchored to (empty for whole-model
    /// failures).
    pub signal: String,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for CollapseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blif collapse error: {}: {}", self.kind, self.message)
    }
}

impl Error for CollapseError {}

fn fail(kind: CollapseErrorKind, signal: &str, message: impl Into<String>) -> CollapseError {
    CollapseError {
        kind,
        signal: signal.to_string(),
        message: message.into(),
    }
}

impl BlifNetlist {
    /// Collapses the node graph into per-output SOP covers over the
    /// primary inputs, in topological order, with contained-cube trimming
    /// after every product. Structural defects (latches, dangling nets,
    /// multiple drivers, cycles), constant primary outputs and cube
    /// blowup past `limits` return a typed [`CollapseError`].
    pub fn to_equations(&self, limits: &CollapseLimits) -> Result<EquationSet, CollapseError> {
        if let Some(latch) = self.latches.first() {
            return Err(fail(
                CollapseErrorKind::Latch,
                &latch.output,
                format!(
                    "latch `{}` at line {}: the fundamental-mode mapper is combinational",
                    latch.output, latch.line
                ),
            ));
        }
        if self.outputs.is_empty() {
            return Err(fail(
                CollapseErrorKind::NoOutputs,
                "",
                "model declares no .outputs",
            ));
        }
        let s = self.structure();
        if let Some(net) = s.undriven.first() {
            return Err(fail(
                CollapseErrorKind::Undriven,
                net,
                format!("net `{net}` is read but never driven"),
            ));
        }
        if let Some(net) = s.multi_driven.first() {
            return Err(fail(
                CollapseErrorKind::MultiDriven,
                net,
                format!("net `{net}` has more than one driver"),
            ));
        }
        if let Some(net) = s.on_cycle.first() {
            return Err(fail(
                CollapseErrorKind::Cycle,
                net,
                format!("combinational cycle through `{net}`"),
            ));
        }

        let vars = VarTable::from_names(self.inputs.iter().map(String::as_str));
        let n = vars.len();
        // ON-set cover of every computed signal, and memoized complements.
        let mut on: HashMap<&str, Cover> = HashMap::new();
        let mut off: HashMap<&str, Cover> = HashMap::new();
        for name in &self.inputs {
            let v = vars.lookup(name).expect("interned above");
            on.insert(
                name,
                Cover::from_cubes(n, vec![Cube::from_literals(n, [(v, Phase::Pos)])]),
            );
        }

        for &idx in &s.topo {
            let node = &self.nodes[idx];
            let mut acc = Cover::zero(n);
            for row in &node.rows {
                let mut product = Cover::one(n);
                for (j, c) in row.plane.chars().enumerate() {
                    let sig = node.inputs[j].as_str();
                    let factor = match c {
                        '1' => on[sig].clone(),
                        '0' => match off.get(sig) {
                            Some(f) => f.clone(),
                            None => {
                                let f = on[sig].complement();
                                check_size(&f, limits, sig)?;
                                off.insert(sig, f.clone());
                                f
                            }
                        },
                        _ => continue, // '-'
                    };
                    product = product.and(&factor).without_contained_cubes();
                    check_size(&product, limits, &node.output)?;
                }
                acc = acc.or(&product);
                check_size(&acc, limits, &node.output)?;
            }
            acc = acc.without_contained_cubes();
            // Rows are phase-uniform (the parser rejects mixed covers); an
            // OFF-set cover describes the complement, and no rows at all
            // means constant 0.
            let off_set = node.rows.first().is_some_and(|r| !r.value);
            if off_set {
                acc = acc.complement();
                check_size(&acc, limits, &node.output)?;
            }
            on.insert(&node.output, acc);
        }

        let mut equations = Vec::with_capacity(self.outputs.len());
        for out in &self.outputs {
            let cover = on[out.as_str()].clone();
            if cover.is_empty() || cover.is_tautology() {
                let which = if cover.is_empty() { "0" } else { "1" };
                return Err(fail(
                    CollapseErrorKind::ConstantOutput,
                    out,
                    format!("primary output `{out}` collapses to constant {which}"),
                ));
            }
            equations.push((out.clone(), cover.without_contained_cubes()));
        }
        Ok(EquationSet::new(vars, equations))
    }
}

fn check_size(cover: &Cover, limits: &CollapseLimits, signal: &str) -> Result<(), CollapseError> {
    if cover.len() > limits.max_cubes {
        return Err(fail(
            CollapseErrorKind::CubeBlowup,
            signal,
            format!(
                "cover for `{signal}` reached {} cubes (limit {})",
                cover.len(),
                limits.max_cubes
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_blif;
    use asyncmap_cube::Bits;

    fn collapse(text: &str) -> Result<EquationSet, CollapseError> {
        parse_blif(text, "t")
            .unwrap()
            .to_equations(&Default::default())
    }

    #[test]
    fn collapses_two_levels() {
        let eqs =
            collapse(".inputs a b c\n.outputs f\n.names a b t\n11 1\n.names t c f\n1- 1\n-1 1\n")
                .unwrap();
        assert_eq!(eqs.equations.len(), 1);
        let (name, cover) = &eqs.equations[0];
        assert_eq!(name, "f");
        // f = a*b + c over the PI space a,b,c.
        let expect = Cover::parse("a*b + c", &eqs.inputs).unwrap();
        assert!(cover.equivalent(&expect));
    }

    #[test]
    fn off_set_rows_and_zero_columns() {
        // f is declared by its OFF-set: f=0 iff a=1,b=0 → f = !a + b.
        let eqs = collapse(".inputs a b\n.outputs f\n.names a b f\n10 0\n").unwrap();
        let expect = Cover::parse("a' + b", &eqs.inputs).unwrap();
        assert!(eqs.equations[0].1.equivalent(&expect));
    }

    #[test]
    fn zero_literal_uses_complement_of_inner_node() {
        // t = a*b; f = !t*c = (!a + !b)*c.
        let eqs = collapse(".inputs a b c\n.outputs f\n.names a b t\n11 1\n.names t c f\n01 1\n")
            .unwrap();
        let expect = Cover::parse("a'c + b'c", &eqs.inputs).unwrap();
        assert!(eqs.equations[0].1.equivalent(&expect));
    }

    #[test]
    fn output_fed_directly_by_primary_input() {
        let eqs = collapse(".inputs a b\n.outputs a f\n.names a b f\n11 1\n").unwrap();
        let expect = Cover::parse("a", &eqs.inputs).unwrap();
        assert!(eqs.equations[0].1.equivalent(&expect));
    }

    #[test]
    fn deep_chain_matches_brute_force_eval() {
        let text = ".inputs a b c d\n.outputs f\n\
            .names a b u\n10 1\n01 1\n\
            .names u c v\n11 1\n\
            .names v d f\n1- 1\n-1 1\n";
        let net = parse_blif(text, "t").unwrap();
        let eqs = net.to_equations(&Default::default()).unwrap();
        let cover = &eqs.equations[0].1;
        for m in 0u32..16 {
            let mut bits = Bits::new(4);
            for i in 0..4 {
                bits.set(i, m >> i & 1 == 1);
            }
            let (a, b, c, d) = (bits.get(0), bits.get(1), bits.get(2), bits.get(3));
            let expect = ((a != b) && c) || d;
            assert_eq!(cover.eval(&bits), expect, "minterm {m}");
        }
    }

    fn kind_of(text: &str) -> CollapseErrorKind {
        collapse(text).unwrap_err().kind
    }

    #[test]
    fn typed_refusals() {
        assert_eq!(
            kind_of(".inputs d\n.outputs q\n.latch d q\n"),
            CollapseErrorKind::Latch
        );
        assert_eq!(
            kind_of(".inputs a\n.outputs f\n.names ghost f\n1 1\n"),
            CollapseErrorKind::Undriven
        );
        assert_eq!(
            kind_of(".inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n"),
            CollapseErrorKind::MultiDriven
        );
        assert_eq!(
            kind_of(".inputs a\n.outputs f\n.names f f\n0 1\n"),
            CollapseErrorKind::Cycle
        );
        assert_eq!(
            kind_of(".inputs a\n.names a f\n1 1\n"),
            CollapseErrorKind::NoOutputs
        );
        assert_eq!(
            kind_of(".inputs a\n.outputs f\n.names f\n1\n"),
            CollapseErrorKind::ConstantOutput
        );
        // Tautology by cover: f = a + !a.
        assert_eq!(
            kind_of(".inputs a\n.outputs f\n.names a f\n1 1\n0 1\n"),
            CollapseErrorKind::ConstantOutput
        );
    }

    #[test]
    fn blowup_is_an_error_not_a_hang() {
        // Parity of 8 inputs via a xor chain: the two-level form has 128
        // cubes; a cap of 16 must trip.
        let mut text = String::from(".inputs x0 x1 x2 x3 x4 x5 x6 x7\n.outputs p\n");
        text.push_str(".names x0 x1 s1\n10 1\n01 1\n");
        for i in 2..8 {
            let prev = if i == 2 {
                "s1".to_string()
            } else {
                format!("s{}", i - 1)
            };
            let cur = if i == 7 {
                "p".to_string()
            } else {
                format!("s{i}")
            };
            text.push_str(&format!(".names {prev} x{i} {cur}\n10 1\n01 1\n"));
        }
        let net = parse_blif(&text, "t").unwrap();
        let err = net
            .to_equations(&CollapseLimits { max_cubes: 16 })
            .unwrap_err();
        assert_eq!(err.kind, CollapseErrorKind::CubeBlowup);
        // And with the default cap it collapses fine: parity of 8 inputs
        // has 128 minterm cubes and no larger implicants.
        let eqs = net.to_equations(&Default::default()).unwrap();
        assert_eq!(eqs.equations[0].1.len(), 128);
    }
}
