//! Regenerates **Table 3** — "automatically-mapped vs hand-mapped designs"
//! in pulldown-transistor area units: the SCSI controller on the LSI
//! library and the ABCS infrared controller on the GDT library, mapped
//! with `async_tmap` and with the greedy designer-style baseline.
//!
//! Paper values: SCSI/LSI auto 168 (no hand-mapped reference);
//! ABCS/GDT hand 312 vs auto 272 — the automatic result ≈13% smaller,
//! even though it includes fanout-buffer cost and the hand-mapped result
//! does not.

use asyncmap_bench::{header, secs};
use asyncmap_core::{async_tmap, hand_map, MapOptions};
use std::time::Instant;

fn main() {
    header(
        "Table 3: automatic vs hand-mapped area (depth of 5)",
        &format!(
            "{:6} {:8} {:>12} {:>12} {:>8} {:>9}",
            "Design", "Library", "hand (area)", "auto (area)", "Δ", "Time"
        ),
    );
    for (design, libname) in [("scsi", "LSI9K"), ("abcs", "GDT")] {
        let eqs = asyncmap_burst::benchmark(design);
        let mut lib = match libname {
            "LSI9K" => asyncmap_library::builtin::lsi9k(),
            _ => asyncmap_library::builtin::gdt(),
        };
        lib.annotate_hazards();
        let opts = MapOptions::default();
        let hand = hand_map(&eqs, &lib, &opts).expect("hand-mappable");
        let t = Instant::now();
        let auto = async_tmap(&eqs, &lib, &opts).expect("auto-mappable");
        let elapsed = t.elapsed();
        assert!(auto.verify_function(&lib));
        assert!(auto.verify_hazards(&lib));
        println!(
            "{:6} {:8} {:>12.0} {:>12.0} {:>7.0}% {:>9}",
            design,
            libname,
            hand.area,
            auto.area,
            100.0 * (auto.area - hand.area) / hand.area,
            secs(elapsed)
        );
    }
    println!("\npaper: SCSI/LSI auto 168 (28.1s) | ABCS/GDT hand 312, auto 272 (28.1s): auto ≈13% smaller");
    println!("note: hand-mapped excludes buffer cost; automatic includes it (as in the paper)");
}
