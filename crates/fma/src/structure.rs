//! Structural soundness of the assembled gate network: every signal has
//! exactly one driver, every instance input is reachable from the primary
//! inputs, and the instance graph is acyclic.
//!
//! A mapped burst-mode controller closes its feedback loops *outside* the
//! combinational block — the `y{k}` outputs re-enter as the `st{k}`
//! inputs — so any cycle through the cell instances themselves is a
//! defect: under the fundamental-mode assumption the block must settle
//! combinationally before the environment moves again. The checks here
//! run first because every later analysis (containment, waveform
//! propagation, packed evaluation) recurses or iterates over the instance
//! graph and would diverge on a cyclic one.

use crate::FmaReport;
use asyncmap_core::MappedDesign;
use asyncmap_network::SignalId;
use asyncmap_report::Severity;
use std::collections::{HashMap, HashSet};

/// Runs the structural checks, appending findings to `report`.
///
/// Returns `true` if the instance graph is sound (no findings of the
/// `cycle.*` family) — the gate every downstream analysis waits on.
pub(crate) fn check_structure(design: &MappedDesign, report: &mut FmaReport) -> bool {
    let net = &design.subject;
    let before = report.num_errors();

    // Flat instance list; (cover, instance) indices are stable.
    let instances: Vec<(usize, usize)> = design
        .covers
        .iter()
        .enumerate()
        .flat_map(|(c, cover)| (0..cover.instances.len()).map(move |i| (c, i)))
        .collect();
    let inst = |g: usize| {
        let (c, i) = instances[g];
        &design.covers[c].instances[i]
    };

    // Exactly one driver per signal.
    let mut drivers: HashMap<SignalId, usize> = HashMap::new();
    for g in 0..instances.len() {
        let count = drivers.entry(inst(g).output).or_insert(0);
        *count += 1;
        if *count == 2 {
            report.push(
                Severity::Error,
                "cycle.multi-driver",
                net.name(inst(g).output).to_owned(),
                "signal is driven by more than one cell instance".to_owned(),
            );
        }
    }

    // Signals known before any instance settles: the primary inputs.
    let mut known: HashSet<SignalId> = net.inputs().iter().copied().collect();

    // Inputs with no driver at all: report once, then treat as known so a
    // single missing wire does not cascade into a forest of findings.
    let mut undriven: HashSet<SignalId> = HashSet::new();
    for g in 0..instances.len() {
        for &sig in &inst(g).inputs {
            if !known.contains(&sig) && !drivers.contains_key(&sig) && undriven.insert(sig) {
                report.push(
                    Severity::Error,
                    "cycle.undriven",
                    net.name(sig).to_owned(),
                    "instance input has no driver (not a primary input, not any cell's output)"
                        .to_owned(),
                );
                known.insert(sig);
            }
        }
    }

    // Kahn's algorithm over the instance graph.
    let mut consumers: HashMap<SignalId, Vec<usize>> = HashMap::new();
    let mut indeg: Vec<usize> = vec![0; instances.len()];
    for (g, deg) in indeg.iter_mut().enumerate() {
        for &sig in &inst(g).inputs {
            if !known.contains(&sig) {
                *deg += 1;
                consumers.entry(sig).or_default().push(g);
            }
        }
    }
    let mut ready: Vec<usize> = (0..instances.len()).filter(|&g| indeg[g] == 0).collect();
    let mut settled = vec![false; instances.len()];
    while let Some(g) = ready.pop() {
        settled[g] = true;
        let out = inst(g).output;
        if known.insert(out) {
            for &h in consumers.get(&out).map_or(&[][..], Vec::as_slice) {
                indeg[h] -= 1;
                if indeg[h] == 0 {
                    ready.push(h);
                }
            }
        }
    }

    // Whatever never settled depends on a cycle. Separate the instances
    // *on* a cycle from those merely downstream of one: repeatedly strip
    // unsettled instances no unsettled instance reads from.
    let unsettled: Vec<usize> = (0..instances.len()).filter(|&g| !settled[g]).collect();
    if !unsettled.is_empty() {
        let mut on_cycle: HashSet<usize> = unsettled.iter().copied().collect();
        loop {
            let read: HashSet<SignalId> = on_cycle
                .iter()
                .flat_map(|&g| inst(g).inputs.iter().copied())
                .collect();
            let strip: Vec<usize> = on_cycle
                .iter()
                .copied()
                .filter(|&g| !read.contains(&inst(g).output))
                .collect();
            if strip.is_empty() {
                break;
            }
            for g in strip {
                on_cycle.remove(&g);
            }
        }
        let loop_size = on_cycle.len();
        for &g in &on_cycle {
            report.push(
                Severity::Error,
                "cycle.combinational",
                net.name(inst(g).output).to_owned(),
                format!(
                    "cell instance sits on a combinational feedback loop of {loop_size} \
                     instance(s); feedback must close through a declared state variable, \
                     not inside the block"
                ),
            );
        }
        for &g in &unsettled {
            if !on_cycle.contains(&g) {
                report.push(
                    Severity::Info,
                    "cycle.combinational",
                    net.name(inst(g).output).to_owned(),
                    "instance never settles (downstream of a combinational cycle)".to_owned(),
                );
            }
        }
    }

    // Every primary output needs a driver (a cyclic driver is already
    // reported above).
    for (name, sig) in net.outputs() {
        if !known.contains(sig) && !drivers.contains_key(sig) {
            report.push(
                Severity::Error,
                "cycle.undriven",
                name.clone(),
                "primary output has no driver".to_owned(),
            );
        }
    }

    report.num_errors() == before
}
