//! A compact, growable bit vector used for the `USED`/`PHASE` encoding of
//! cubes (paper, Figure 5 and §4.1.1).
//!
//! The vector is a thin wrapper over `Vec<u64>` words. All binary operations
//! require both operands to have the same length; this is enforced with
//! `debug_assert!` because the cube layer already guarantees it.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-width bit vector.
///
/// `Bits` is the storage type behind [`crate::Cube`]'s `USED` and `PHASE`
/// vectors. Bit `i` corresponds to variable `i` of the enclosing
/// [`crate::VarTable`].
///
/// # Examples
///
/// ```
/// use asyncmap_cube::Bits;
/// let mut b = Bits::new(70);
/// b.set(3, true);
/// b.set(69, true);
/// assert!(b.get(3) && b.get(69) && !b.get(4));
/// assert_eq!(b.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bits {
    len: usize,
    words: Vec<u64>,
}

impl Bits {
    /// Creates an all-zero bit vector holding `len` bits.
    pub fn new(len: usize) -> Self {
        Bits {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates an all-one bit vector holding `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = Bits {
            len,
            words: vec![!0u64; len.div_ceil(WORD_BITS)],
        };
        b.mask_tail();
        b
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let m = 1u64 << (i % WORD_BITS);
        if value {
            *w |= m;
        } else {
            *w &= !m;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// `true` if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterator over indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bits: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// `self & other`, element-wise.
    pub fn and(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a & b)
    }

    /// `self | other`, element-wise.
    pub fn or(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a | b)
    }

    /// `self ^ other`, element-wise.
    pub fn xor(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// `self & !other`, element-wise.
    pub fn and_not(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a & !b)
    }

    /// Bitwise complement (restricted to the vector's width).
    pub fn not(&self) -> Bits {
        let mut out = Bits {
            len: self.len,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }

    /// `true` if every set bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &Bits) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` if `self` and `other` share no set bit.
    pub fn is_disjoint(&self, other: &Bits) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    fn zip_with(&self, other: &Bits, f: impl Fn(u64, u64) -> u64) -> Bits {
        debug_assert_eq!(self.len, other.len, "bit vector length mismatch");
        Bits {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

/// Iterator over set-bit indices of a [`Bits`], produced by
/// [`Bits::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bits: &'a Bits,
    word_index: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.bits.words.len() {
                return None;
            }
            self.current = self.bits.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let b = Bits::new(100);
        assert!(b.is_zero());
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 0);
        assert!(b.first_one().is_none());
    }

    #[test]
    fn ones_has_all_bits() {
        let b = Bits::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.get(0) && b.get(69));
    }

    #[test]
    fn ones_tail_is_masked() {
        // A complement of ones must be exactly zero even with a partial word.
        let b = Bits::ones(65);
        assert!(b.not().is_zero());
    }

    #[test]
    fn set_get_flip_across_words() {
        let mut b = Bits::new(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        b.flip(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut b = Bits::new(200);
        let idx = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idx {
            b.set(i, true);
        }
        let collected: Vec<usize> = b.iter_ones().collect();
        assert_eq!(collected, idx);
    }

    #[test]
    fn boolean_ops() {
        let mut a = Bits::new(80);
        let mut b = Bits::new(80);
        a.set(1, true);
        a.set(70, true);
        b.set(1, true);
        b.set(2, true);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![1]);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![1, 2, 70]);
        assert_eq!(a.xor(&b).iter_ones().collect::<Vec<_>>(), vec![2, 70]);
        assert_eq!(a.and_not(&b).iter_ones().collect::<Vec<_>>(), vec![70]);
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = Bits::new(10);
        let mut b = Bits::new(10);
        a.set(3, true);
        b.set(3, true);
        b.set(4, true);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut c = Bits::new(10);
        c.set(5, true);
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn first_one_positions() {
        let mut b = Bits::new(130);
        b.set(127, true);
        assert_eq!(b.first_one(), Some(127));
        b.set(3, true);
        assert_eq!(b.first_one(), Some(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bits::new(8).get(8);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Bits::new(0)).is_empty());
    }
}
