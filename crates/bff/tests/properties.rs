//! Property tests for the BFF layer: every transformation preserves the
//! function, and the structural accounting (literals, paths) is
//! consistent, on randomly generated expression trees.

use asyncmap_bff::{flatten, label_paths, Expr, PathSop};
use asyncmap_cube::{Bits, VarId};
use proptest::prelude::*;

const NVARS: usize = 4;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(|v| Expr::Var(VarId(v))),
        (0..NVARS).prop_map(|v| Expr::Var(VarId(v)).not()),
        Just(Expr::Const(true)),
        Just(Expr::Const(false)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(|e| e.not()),
        ]
    })
}

fn assignment(m: usize) -> Bits {
    let mut b = Bits::new(NVARS);
    for v in 0..NVARS {
        b.set(v, (m >> v) & 1 == 1);
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nnf_preserves_function(e in arb_expr()) {
        let nnf = e.to_nnf();
        for m in 0..(1usize << NVARS) {
            prop_assert_eq!(e.eval(&assignment(m)), nnf.eval(&assignment(m)));
        }
        // NNF has inverters only at leaves.
        fn check(e: &Expr) -> bool {
            match e {
                Expr::Const(_) | Expr::Var(_) => true,
                Expr::Not(inner) => matches!(**inner, Expr::Var(_)),
                Expr::And(es) | Expr::Or(es) => es.iter().all(check),
            }
        }
        prop_assert!(check(&nnf));
    }

    #[test]
    fn simplify_assoc_preserves_function(e in arb_expr()) {
        let s = e.simplify_assoc();
        for m in 0..(1usize << NVARS) {
            prop_assert_eq!(e.eval(&assignment(m)), s.eval(&assignment(m)));
        }
    }

    #[test]
    fn flatten_preserves_function(e in arb_expr()) {
        let flat = flatten(&e, NVARS);
        for m in 0..(1usize << NVARS) {
            prop_assert_eq!(
                e.eval(&assignment(m)),
                flat.cover.eval(&assignment(m)),
                "mismatch at {:#b}", m
            );
        }
    }

    #[test]
    fn path_sop_collapses_to_the_function(e in arb_expr()) {
        let ps = PathSop::of(&e);
        let collapsed = ps.to_original_cover(NVARS);
        for m in 0..(1usize << NVARS) {
            prop_assert_eq!(e.eval(&assignment(m)), collapsed.eval(&assignment(m)));
        }
    }

    #[test]
    fn path_count_equals_literal_count_after_nnf(e in arb_expr()) {
        let nnf = e.to_nnf().simplify_assoc();
        let (_, labeling) = label_paths(&e);
        prop_assert_eq!(labeling.num_paths() as u32, nnf.num_literals());
    }

    #[test]
    fn display_parse_roundtrip(e in arb_expr()) {
        let vars = asyncmap_cube::VarTable::from_names(["a", "b", "c", "d"]);
        let text = e.display(&vars).to_string();
        let parsed = Expr::parse_in(&text, &vars).unwrap();
        for m in 0..(1usize << NVARS) {
            prop_assert_eq!(e.eval(&assignment(m)), parsed.eval(&assignment(m)));
        }
    }

    #[test]
    fn substitute_identity_is_identity(e in arb_expr()) {
        let id = e.substitute(&|v| (v, asyncmap_cube::Phase::Pos));
        for m in 0..(1usize << NVARS) {
            prop_assert_eq!(e.eval(&assignment(m)), id.eval(&assignment(m)));
        }
    }
}
