//! Pair-wise qualification: decompose and partition the design exactly as
//! the mapper would, then check every cone root's sampled cut functions
//! for a realizable match.

use crate::PreflightReport;
use asyncmap_core::{enumerate_clusters, ClusterLimits, HazardPolicy, Matcher};
use asyncmap_library::Library;
use asyncmap_network::{async_tech_decomp, partition, EquationSet};
use asyncmap_report::Severity;

/// Statically qualifies the (design, library) pair.
///
/// Tree covering must choose, at every cone root, a matched cluster
/// rooted there — interior gates can ride inside an ancestor's cluster,
/// but the root cannot. So a root none of whose enumerated clusters
/// matches any library cell (pin-permutation-exact, hazards ignored) is a
/// *guaranteed* cover failure and reports `pair.unmappable` at error
/// severity. A root that matches functionally but loses every match to
/// the hazard-containment filter reports `pair.hazard-limited` at warning
/// severity: the mapper's buffer insertion or objective choice may still
/// find a legal cover, but the pair deserves a look.
pub fn preflight_pair(eqs: &EquationSet, library: &Library) -> PreflightReport {
    let mut report = PreflightReport::default();
    if library.is_empty() || eqs.equations.is_empty() {
        return report;
    }
    let net = async_tech_decomp(eqs);
    let cones = partition(&net);
    report.counters.cones = cones.len();

    let functional = Matcher::new(library, HazardPolicy::Ignore);
    // Hazard filtering needs annotated cells; annotate a clone so the
    // caller's library object is untouched.
    let mut annotated = library.clone();
    annotated.annotate_hazards();
    let hazard = Matcher::new(&annotated, HazardPolicy::SubsetCheck);

    let limits = ClusterLimits::default();
    for cone in &cones {
        let clusters = enumerate_clusters(&net, cone, &limits);
        let Some(rooted) = clusters.get(&cone.root) else {
            continue;
        };
        report.counters.clusters += rooted.len();
        let mut functional_ok = false;
        let mut hazard_ok = false;
        for cluster in rooted {
            if !functional.find_matches(cluster).is_empty() {
                functional_ok = true;
            }
            if !hazard.find_matches(cluster).is_empty() {
                hazard_ok = true;
                break;
            }
        }
        let root_name = net.name(cone.root);
        if !functional_ok {
            report.counters.unmappable_roots += 1;
            report.push(
                Severity::Error,
                "pair.unmappable",
                format!("cone {root_name}"),
                format!(
                    "none of the {} cluster(s) rooted here matches any cell of \
                     {}: covering is guaranteed to fail",
                    rooted.len(),
                    library.name()
                ),
            );
        } else if !hazard_ok {
            report.push(
                Severity::Warning,
                "pair.hazard-limited",
                format!("cone {root_name}"),
                "every functional match at this root is rejected by the \
                 hazard-containment filter"
                    .into(),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_library::{builtin, Cell};

    #[test]
    fn builtin_pairs_have_no_unmappable_roots() {
        let eqs = asyncmap_burst::benchmark("dme");
        for lib in builtin::all_libraries() {
            let report = preflight_pair(&eqs, &lib);
            assert_eq!(
                report.num_errors(),
                0,
                "{}: {}",
                lib.name(),
                report.render()
            );
        }
    }

    #[test]
    fn library_without_inverters_is_unmappable_on_a_design_needing_them() {
        // AND/OR cells only: any cone whose root is an inverter (every
        // benchmark has one after DeMorgan-free decomposition) or whose
        // root function is negative in some input cannot be covered.
        let mut lib = Library::new("no-inv");
        lib.add(Cell::from_bff("AND2", "a*b", 1.0));
        lib.add(Cell::from_bff("OR2", "a + b", 1.0));
        lib.add(Cell::from_bff("BUF", "(a')'", 1.0));
        let eqs = asyncmap_burst::benchmark("dme");
        let report = preflight_pair(&eqs, &lib);
        assert!(
            report.num_errors() > 0,
            "expected unmappable roots:\n{}",
            report.render()
        );
        assert!(report.findings.iter().any(|f| f.code == "pair.unmappable"));
    }

    #[test]
    fn empty_design_or_library_is_quietly_skipped() {
        let eqs = asyncmap_burst::benchmark("dme");
        let report = preflight_pair(&eqs, &Library::new("void"));
        assert!(report.is_clean());
    }
}
