//! SIMD-vs-scalar equivalence for the core-side lane-widened kernels: the
//! delta-swap truth-table permuters against their minterm-loop references,
//! and the word-parallel bloom popcount screen the cut enumerator uses
//! against the one-candidate-at-a-time scalar filter.

use asyncmap_core::truth;
use asyncmap_cube::simd::{U64x4, LANES};
use proptest::prelude::*;

/// Permutation of `0..n` driven by a proptest byte stream (Fisher–Yates).
fn perm_from_stream(n: usize, stream: &[u8]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = stream[i % stream.len().max(1)] as usize % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #[test]
    fn apply_perm6_matches_generic(
        t in any::<u64>(),
        n in 0usize..7,
        stream in prop::collection::vec(any::<u8>(), 8..9),
    ) {
        let t = t & truth::full_mask(n);
        let perm = perm_from_stream(n, &stream);
        prop_assert_eq!(
            truth::apply_perm6(t, &perm, n),
            truth::apply_perm6_generic(t, &perm, n)
        );
    }

    #[test]
    fn apply_perm_wide_matches_generic(
        words4 in prop::collection::vec(any::<u64>(), 4..5),
        n in 7usize..9,
        stream in prop::collection::vec(any::<u8>(), 8..9),
    ) {
        // Mask to the live minterms: a 7-variable table only uses the
        // lower two words.
        let live = 1usize << n;
        let mut t = [0u64; 4];
        for (w, out) in words4.iter().zip(&mut t) {
            *out = *w;
        }
        for w in t.iter_mut().skip(live / 64) {
            *w = 0;
        }
        let perm = perm_from_stream(n, &stream);
        prop_assert_eq!(
            truth::apply_perm_wide(t, &perm, n),
            truth::apply_perm_wide_generic(t, &perm, n)
        );
    }

    #[test]
    fn bloom_screen_matches_scalar(
        sa in any::<u64>(),
        cands in prop::collection::vec(any::<u64>(), 0..11),
        max_leaves in 1usize..9,
    ) {
        // Mirror of the enumerator's cross-product screen: candidate
        // bloom words are unioned with the accumulated set's word four
        // lanes at a time, padding lanes filled with all ones so they
        // can never pass the popcount bound.
        let mut simd_keep = Vec::new();
        let sa4 = U64x4::splat(sa);
        for chunk in cands.chunks(LANES) {
            let sg = U64x4(std::array::from_fn(|i| {
                chunk.get(i).copied().unwrap_or(!0u64)
            }));
            let counts = (sa4 | sg).count_ones_per_lane();
            for (&count, _) in counts.iter().zip(chunk) {
                simd_keep.push(count as usize <= max_leaves);
            }
        }
        let scalar_keep: Vec<bool> = cands
            .iter()
            .map(|&c| ((sa | c).count_ones() as usize) <= max_leaves)
            .collect();
        prop_assert_eq!(simd_keep, scalar_keep);
    }
}
