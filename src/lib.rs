//! # asyncmap
//!
//! A from-scratch reproduction of *Siegel, De Micheli, Dill — "Automatic
//! Technology Mapping for Generalized Fundamental-Mode Asynchronous
//! Designs"* (Stanford CSL-TR-93-580 / DAC 1993): a hazard-aware
//! technology mapper for burst-mode asynchronous controllers, together
//! with every substrate it needs (cube/SOP algebra, a BDD package, Boolean
//! factored forms, the paper's hazard-analysis algorithms, a logic-network
//! layer, synthetic standard-cell libraries and a burst-mode synthesis
//! front end).
//!
//! The facade re-exports each subsystem as a module:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`cube`] | `asyncmap-cube` | `USED`/`PHASE` cubes, covers, primes |
//! | [`bdd`] | `asyncmap-bdd` | hash-consed ROBDDs |
//! | [`bff`] | `asyncmap-bff` | Boolean factored forms, flattening, paths |
//! | [`hazard`] | `asyncmap-hazard` | §4 hazard analysis + waveform oracle |
//! | [`network`] | `asyncmap-network` | subject networks, decomposition, cones |
//! | [`library`] | `asyncmap-library` | cells, libraries, Table 1 builtins |
//! | [`mapper`] | `asyncmap-core` | `tmap` / `async_tmap` / `hand_map` |
//! | [`burst`] | `asyncmap-burst` | burst-mode specs, hazard-free synthesis, Table 5 benchmarks |
//! | [`audit`] | `asyncmap-audit` | translation-validation certificate replay, spec checking |
//!
//! # Quickstart
//!
//! ```
//! use asyncmap::prelude::*;
//!
//! // A burst-mode controller (paper Figure 1), synthesized to hazard-free
//! // equations and mapped to a mux-rich commercial library.
//! let eqs = asyncmap::burst::benchmark("dme-fast");
//! let mut lib = asyncmap::library::builtin::lsi9k();
//! lib.annotate_hazards();
//! let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
//! assert!(design.verify_function(&lib));
//! assert!(design.verify_hazards(&lib));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asyncmap_audit as audit;
pub use asyncmap_bdd as bdd;
pub use asyncmap_bench as bench;
pub use asyncmap_bff as bff;
pub use asyncmap_burst as burst;
pub use asyncmap_core as mapper;
pub use asyncmap_cube as cube;
pub use asyncmap_fma as fma;
pub use asyncmap_hazard as hazard;
pub use asyncmap_library as library;
pub use asyncmap_lint as lint;
pub use asyncmap_network as network;
pub use asyncmap_report as report;

/// The most common items, for glob import.
pub mod prelude {
    pub use asyncmap_bff::Expr;
    pub use asyncmap_core::{
        async_tmap, hand_map, hdc_tmap, tmap, EcoOutcome, EcoSession, EcoStats, MapOptions,
        MappedDesign, Objective,
    };
    pub use asyncmap_cube::{Cover, Cube, VarTable};
    pub use asyncmap_fma::{analyze_design, analyze_design_with_spec, FmaCache, FmaReport};
    pub use asyncmap_hazard::{analyze_expr, hazards_subset, HazardReport};
    pub use asyncmap_library::{builtin, Cell, Library};
    pub use asyncmap_lint::{lint_mapped_design, LintReport};
    pub use asyncmap_network::EquationSet;
}

/// Installs the independent lint pass ([`lint::lint_mapped_design`]) as the
/// mapper's post-map hook, so `ASYNCMAP_LINT=1` makes every
/// [`prelude::async_tmap`] call verify its own output and panic with the
/// rendered report on any finding. Idempotent.
///
/// The hook indirection exists because `asyncmap-core` cannot depend on
/// `asyncmap-lint`: the lint pass is only trustworthy while it shares no
/// code with the mapper it checks.
pub fn install_lint_hook() {
    asyncmap_core::set_post_map_hook(|design, library| {
        let report = asyncmap_lint::lint_mapped_design(design, library);
        if report.is_clean() {
            Ok(())
        } else {
            Err(report.render())
        }
    });
}

/// Installs the translation-validation checker
/// ([`audit::check_pipeline`]) as the mapper's post-transform hook, so
/// `ASYNCMAP_AUDIT=1` makes every [`prelude::async_tmap`] call replay the
/// front end's certificate trail (decomposition rewrite steps, partition
/// cuts, cone flatten traces) and panic with the rendered report on any
/// failing certificate. Idempotent.
///
/// The hook indirection exists because `asyncmap-core` cannot depend on
/// `asyncmap-audit`: the replay only certifies the transformations while
/// it shares no code with them.
pub fn install_audit_hook() {
    asyncmap_core::set_post_transform_hook(|eqs, net, dtrace, cones, ptrace| {
        let report = asyncmap_audit::check_pipeline(eqs, net, dtrace, cones, ptrace);
        if report.is_clean() {
            Ok(report.counters.num_certificates())
        } else {
            Err(report.render())
        }
    });
}

/// Installs the whole-design fundamental-mode analyzer
/// ([`fma::analyze_design`]) as the mapper's post-analyze hook, so
/// `ASYNCMAP_FMA=1` makes every [`prelude::async_tmap`] and
/// [`prelude::EcoSession`] remap statically analyze its own output —
/// instance-graph structure and cross-cone hazard containment — and
/// panic with the rendered report on any error-severity finding.
/// Idempotent.
///
/// The hook shares one process-wide [`fma::FmaCache`], so an ECO loop's
/// re-analyses reuse every cone whose (shape, cover) already analyzed
/// clean. The hook indirection exists for the same reason as the lint
/// one: `asyncmap-core` cannot depend on the checker that judges it.
pub fn install_fma_hook() {
    asyncmap_core::set_post_analyze_hook(|design, library| {
        static CACHE: std::sync::Mutex<Option<asyncmap_fma::FmaCache>> =
            std::sync::Mutex::new(None);
        let mut guard = CACHE.lock().expect("fma hook cache poisoned");
        let cache = guard.get_or_insert_with(asyncmap_fma::FmaCache::new);
        let report = asyncmap_fma::analyze_design_cached(design, library, cache);
        if report.num_errors() == 0 {
            Ok(report.counters.cones)
        } else {
            Err(report.render())
        }
    });
}
