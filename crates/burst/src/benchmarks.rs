//! Reconstructions of the paper's benchmark controllers (Table 5).
//!
//! The original circuits (chu-ad, the DME arbiters, Martin's SCSI, the
//! HP/Stanford ABCS infrared controller, dean-ctrl, …) are not publicly
//! archived, so each benchmark is a *deterministic synthetic burst-mode
//! controller* of calibrated size: the input/output/state counts are chosen
//! so that the relative complexity ordering of Table 5 (dean-ctrl ≫ scsi ≫
//! oscsi-ctrl ≳ abcs ≫ pe-send-ifc ≫ the small DME/chu/vanbek designs) is
//! preserved. Every benchmark is synthesized to hazard-free two-level
//! equations by [`crate::hazard_free_cover`], exactly the shape the paper's
//! mapper consumes from the locally-clocked / 3D synthesis tools.

use crate::flow::expand;
use crate::minimize::hazard_free_cover;
use crate::spec::{BurstEdge, BurstSpec, StateId};
use asyncmap_cube::{Bits, Cover, VarTable};
use asyncmap_network::EquationSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size parameters of one synthetic controller.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkDef {
    /// Benchmark name (matching Table 5).
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Burst-mode states.
    pub states: usize,
    /// Extra (non-tree) transitions.
    pub extra_edges: usize,
    /// Base RNG seed (advanced until generation succeeds).
    pub seed: u64,
}

/// The Table 5 benchmark suite, smallest to largest.
pub const BENCHMARKS: &[BenchmarkDef] = &[
    def("vanbek-opt", 3, 1, 3, 0, 101),
    def("dme-fast", 3, 2, 3, 0, 102),
    def("chu-ad-opt", 3, 2, 3, 1, 103),
    def("dme", 3, 2, 4, 1, 104),
    def("dme-opt", 4, 2, 4, 1, 105),
    def("dme-fast-opt", 4, 3, 4, 2, 106),
    def("pe-send-ifc", 5, 3, 6, 3, 107),
    def("abcs", 6, 4, 10, 5, 108),
    def("oscsi-ctrl", 7, 4, 11, 5, 109),
    def("scsi", 8, 5, 14, 6, 110),
    def("dean-ctrl", 9, 6, 18, 8, 111),
];

const fn def(
    name: &'static str,
    inputs: usize,
    outputs: usize,
    states: usize,
    extra_edges: usize,
    seed: u64,
) -> BenchmarkDef {
    BenchmarkDef {
        name,
        inputs,
        outputs,
        states,
        extra_edges,
        seed,
    }
}

/// Generates the named benchmark's hazard-free equations.
///
/// # Panics
///
/// Panics if the name is unknown, or if no seed within the retry budget
/// yields a consistent, synthesizable controller (deterministic, so this
/// is caught by the test suite, not at user run time).
pub fn benchmark(name: &str) -> EquationSet {
    let d = BENCHMARKS
        .iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
    generate(d)
}

/// The full suite as `(name, equations)` pairs.
pub fn all_benchmarks() -> Vec<(&'static str, EquationSet)> {
    BENCHMARKS.iter().map(|d| (d.name, generate(d))).collect()
}

/// Generates the named benchmark's equations together with its specified
/// transitions — the `(from, to)` total-state bursts of every edge's input
/// and state phase, over the equation variable space. These are the
/// *transitions of interest* that hazard-don't-care mapping protects.
///
/// # Panics
///
/// Same conditions as [`benchmark`].
pub fn benchmark_with_transitions(name: &str) -> (EquationSet, Vec<(Bits, Bits)>) {
    let d = BENCHMARKS
        .iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
    for attempt in 0..200 {
        let seed = d.seed.wrapping_add(attempt);
        let Some(spec) = random_spec(d, seed) else {
            continue;
        };
        if spec.validate().is_err() {
            continue;
        }
        let Ok(flow) = expand(&spec) else { continue };
        let mut vars = VarTable::new();
        for n in &flow.var_names {
            vars.intern(n);
        }
        let mut equations: Vec<(String, Cover)> = Vec::new();
        let mut ok = true;
        for f in &flow.functions {
            match hazard_free_cover(f) {
                Ok(c) if !c.is_empty() && !c.is_tautology() => {
                    equations.push((f.name.clone(), c));
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let mut transitions: Vec<(Bits, Bits)> = Vec::new();
        for f in &flow.functions {
            for t in &f.transitions {
                let pair = (t.start.clone(), t.end.clone());
                if !transitions.contains(&pair) {
                    transitions.push(pair);
                }
            }
        }
        return (EquationSet::new(vars, equations), transitions);
    }
    panic!("benchmark {name:?} failed to generate within the retry budget");
}

/// Generates the benchmark's burst-mode spec (for inspection and for the
/// examples).
///
/// # Panics
///
/// Same conditions as [`benchmark`].
pub fn benchmark_spec(name: &str) -> BurstSpec {
    let d = BENCHMARKS
        .iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}"));
    for attempt in 0..200 {
        if let Some((spec, _)) = try_generate(d, d.seed.wrapping_add(attempt)) {
            return spec;
        }
    }
    panic!("benchmark {name:?} failed to generate within the retry budget");
}

fn generate(d: &BenchmarkDef) -> EquationSet {
    for attempt in 0..200 {
        if let Some((_, eqs)) = try_generate(d, d.seed.wrapping_add(attempt)) {
            return eqs;
        }
    }
    panic!(
        "benchmark {:?} failed to generate within the retry budget",
        d.name
    );
}

fn try_generate(d: &BenchmarkDef, seed: u64) -> Option<(BurstSpec, EquationSet)> {
    let spec = random_spec(d, seed)?;
    spec.validate().ok()?;
    let flow = expand(&spec).ok()?;
    let mut vars = VarTable::new();
    for n in &flow.var_names {
        vars.intern(n);
    }
    let mut equations: Vec<(String, Cover)> = Vec::new();
    for f in &flow.functions {
        let cover = hazard_free_cover(f).ok()?;
        if cover.is_empty() || cover.is_tautology() {
            return None;
        }
        equations.push((f.name.clone(), cover));
    }
    Some((spec, EquationSet::new(vars, equations)))
}

fn random_bits(rng: &mut StdRng, len: usize) -> Bits {
    let mut b = Bits::new(len);
    for i in 0..len {
        b.set(i, rng.random::<bool>());
    }
    b
}

fn random_spec(d: &BenchmarkDef, seed: u64) -> Option<BurstSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (ni, no, ns) = (d.inputs, d.outputs, d.states);
    // Distinct entry input vectors (state 0 = all-zero).
    let mut vectors: Vec<Bits> = vec![Bits::new(ni)];
    for _ in 1..ns {
        let mut tries = 0;
        loop {
            let v = random_bits(&mut rng, ni);
            if !vectors.contains(&v) {
                vectors.push(v);
                break;
            }
            tries += 1;
            if tries > 64 {
                return None;
            }
        }
    }
    // Entry output values; retried until every output column is
    // non-constant.
    let mut out_values: Vec<Bits> = vec![Bits::new(no)];
    for _ in 1..ns {
        out_values.push(random_bits(&mut rng, no));
    }
    for o in 0..no {
        let first = out_values[0].get(o);
        if out_values.iter().all(|v| v.get(o) == first) {
            let s = 1 + rng.random_range(0..ns - 1);
            out_values[s].flip(o);
        }
    }
    // Spanning-tree edges guarantee reachability.
    let mut edges: Vec<BurstEdge> = Vec::new();
    for s in 1..ns {
        let parent = rng.random_range(0..s);
        edges.push(BurstEdge {
            from: StateId(parent),
            to: StateId(s),
            input_burst: vectors[parent].xor(&vectors[s]),
            output_burst: out_values[parent].xor(&out_values[s]),
        });
    }
    // Extra edges (closing cycles), kept only when they respect the
    // maximal set property.
    let mut added = 0;
    let mut attempts = 0;
    while added < d.extra_edges && attempts < 20 * d.extra_edges.max(1) {
        attempts += 1;
        let s = rng.random_range(0..ns);
        let t = rng.random_range(0..ns);
        if s == t {
            continue;
        }
        let burst = vectors[s].xor(&vectors[t]);
        let clash = edges.iter().any(|e| {
            e.from.0 == s && (e.input_burst.is_subset(&burst) || burst.is_subset(&e.input_burst))
        });
        if clash {
            continue;
        }
        edges.push(BurstEdge {
            from: StateId(s),
            to: StateId(t),
            input_burst: burst,
            output_burst: out_values[s].xor(&out_values[t]),
        });
        added += 1;
    }
    Some(BurstSpec {
        name: d.name.to_owned(),
        input_names: (0..ni).map(|i| format!("i{i}")).collect(),
        output_names: (0..no).map(|o| format!("o{o}")).collect(),
        num_states: ns,
        edges,
        initial_inputs: Bits::new(ni),
        initial_outputs: Bits::new(no),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_benchmarks_generate_deterministically() {
        let a = benchmark("chu-ad-opt");
        let b = benchmark("chu-ad-opt");
        assert_eq!(a.num_cubes(), b.num_cubes());
        assert_eq!(a.num_literals(), b.num_literals());
        assert!(!a.equations.is_empty());
    }

    #[test]
    fn suite_sizes_are_ordered() {
        // Literal counts must grow from the small DME-class designs to
        // dean-ctrl (the Table 5 complexity ordering).
        let small = benchmark("vanbek-opt");
        let mid = benchmark("pe-send-ifc");
        assert!(small.num_literals() < mid.num_literals());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        benchmark("nope");
    }

    #[test]
    fn specs_validate() {
        let spec = benchmark_spec("dme-fast");
        let entry = spec.validate().unwrap();
        assert_eq!(entry.inputs.len(), spec.num_states);
    }
}
