//! Fixture `.bms` files that violate the burst-mode well-formedness
//! properties must be rejected *on load* (not just by an explicit
//! `validate()` call), with the violated property identified by a typed
//! [`SpecErrorKind`].

use asyncmap_burst::{parse_bms, SpecErrorKind};

#[test]
fn maximal_set_violation_rejected_on_load() {
    let e = parse_bms(include_str!("fixtures/maximal_set.bms")).unwrap_err();
    assert_eq!(e.kind, SpecErrorKind::MaximalSet);
    assert!(e.message.contains("subset"), "{e}");
}

#[test]
fn indistinguishable_bursts_rejected_on_load() {
    let e = parse_bms(include_str!("fixtures/indistinguishable.bms")).unwrap_err();
    assert_eq!(e.kind, SpecErrorKind::Indistinguishable);
    assert!(e.message.contains("indistinguishable"), "{e}");
}

#[test]
fn fixtures_differ_only_in_the_offending_burst() {
    // Both fixtures are the same machine except for the second edge's
    // burst; removing that edge from either yields a valid spec. This
    // pins the rejections on the intended violation, not a side effect.
    for fixture in [
        include_str!("fixtures/maximal_set.bms"),
        include_str!("fixtures/indistinguishable.bms"),
    ] {
        let cleaned: String = fixture
            .lines()
            .filter(|l| !l.starts_with("edge 0 2"))
            .map(|l| format!("{l}\n"))
            .collect();
        let cleaned = cleaned.replace("states 3", "states 2");
        parse_bms(&cleaned).expect("fixture minus the offending edge is valid");
    }
}
