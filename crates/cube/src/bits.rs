//! A compact, growable bit vector used for the `USED`/`PHASE` encoding of
//! cubes (paper, Figure 5 and §4.1.1).
//!
//! Storage is word-level with a small-size fast path: vectors of up to
//! 128 bits (one or two `u64` words — every cube space the mapper and the
//! hazard algorithms touch in practice) live inline in the struct and
//! never allocate; wider vectors spill to a `Vec<u64>`. All binary
//! operations require both operands to have the same length; this is
//! enforced with `debug_assert!` because the cube layer already
//! guarantees it.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// Number of words stored inline before spilling to the heap.
const INLINE_WORDS: usize = 2;

/// Word storage: inline for ≤ `INLINE_WORDS` words, heap beyond. The
/// active word count is always derived from the owning vector's bit
/// length, so inline padding words past the end are never observed (they
/// are kept zeroed anyway).
#[derive(Clone)]
enum Store {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// A fixed-width bit vector.
///
/// `Bits` is the storage type behind [`crate::Cube`]'s `USED` and `PHASE`
/// vectors. Bit `i` corresponds to variable `i` of the enclosing
/// [`crate::VarTable`].
///
/// # Examples
///
/// ```
/// use asyncmap_cube::Bits;
/// let mut b = Bits::new(70);
/// b.set(3, true);
/// b.set(69, true);
/// assert!(b.get(3) && b.get(69) && !b.get(4));
/// assert_eq!(b.count_ones(), 2);
/// ```
pub struct Bits {
    len: usize,
    store: Store,
}

#[inline]
const fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl Bits {
    /// Creates an all-zero bit vector holding `len` bits.
    #[inline]
    pub fn new(len: usize) -> Self {
        let store = if words_for(len) <= INLINE_WORDS {
            Store::Inline([0; INLINE_WORDS])
        } else {
            Store::Heap(vec![0; words_for(len)])
        };
        Bits { len, store }
    }

    /// Creates an all-one bit vector holding `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = if words_for(len) <= INLINE_WORDS {
            Bits {
                len,
                store: Store::Inline([!0u64; INLINE_WORDS]),
            }
        } else {
            Bits {
                len,
                store: Store::Heap(vec![!0u64; words_for(len)]),
            }
        };
        b.mask_tail();
        // Inline padding words past the active count must stay zero so
        // whole-array comparisons never see them (mask_tail only clears
        // the partial tail of the last *active* word).
        if let Store::Inline(w) = &mut b.store {
            for word in w.iter_mut().skip(words_for(len)) {
                *word = 0;
            }
        }
        b
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The storage words, low bits first: bit `i` of the vector lives at
    /// bit `i % 64` of word `i / 64`. Bits beyond `len` in the final word
    /// are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.store {
            Store::Inline(w) => &w[..words_for(self.len)],
            Store::Heap(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let n = words_for(self.len);
        match &mut self.store {
            Store::Inline(w) => &mut w[..n],
            Store::Heap(v) => v,
        }
    }

    /// Builds a vector of `len` bits by filling words from `f(word_index)`
    /// (tail bits beyond `len` are masked off).
    #[inline]
    pub fn from_words_fn(len: usize, mut f: impl FnMut(usize) -> u64) -> Bits {
        let mut out = Bits::new(len);
        for (i, w) in out.words_mut().iter_mut().enumerate() {
            *w = f(i);
        }
        out.mask_tail();
        out
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `i >= self.len()`; release builds omit the
    /// check (this accessor is on the mapper's innermost loops).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words()[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `i >= self.len()`; release builds omit the
    /// check.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words_mut()[i / WORD_BITS];
        let m = 1u64 << (i % WORD_BITS);
        if value {
            *w |= m;
        } else {
            *w &= !m;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `i >= self.len()`; release builds omit the
    /// check.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words_mut()[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// `true` if no bit is set.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words().iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterator over indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bits: self,
            word_index: 0,
            current: self.words().first().copied().unwrap_or(0),
        }
    }

    /// `self & other`, element-wise.
    #[inline]
    pub fn and(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a & b)
    }

    /// `self | other`, element-wise.
    #[inline]
    pub fn or(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a | b)
    }

    /// `self ^ other`, element-wise.
    #[inline]
    pub fn xor(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// `self & !other`, element-wise.
    #[inline]
    pub fn and_not(&self, other: &Bits) -> Bits {
        self.zip_with(other, |a, b| a & !b)
    }

    /// Bitwise complement (restricted to the vector's width).
    pub fn not(&self) -> Bits {
        let words = self.words();
        let mut out = Bits::from_words_fn(self.len, |i| !words[i]);
        out.mask_tail();
        out
    }

    /// `true` if every set bit of `self` is also set in `other`.
    #[inline]
    pub fn is_subset(&self, other: &Bits) -> bool {
        debug_assert_eq!(self.len, other.len);
        crate::simd::subset_words(self.words(), other.words())
    }

    /// `true` if `self` and `other` share no set bit.
    #[inline]
    pub fn is_disjoint(&self, other: &Bits) -> bool {
        debug_assert_eq!(self.len, other.len);
        crate::simd::disjoint_words(self.words(), other.words())
    }

    #[inline]
    fn zip_with(&self, other: &Bits, f: impl Fn(u64, u64) -> u64) -> Bits {
        debug_assert_eq!(self.len, other.len, "bit vector length mismatch");
        let (a, b) = (self.words(), other.words());
        Bits::from_words_fn(self.len, |i| f(a[i], b[i]))
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl Default for Bits {
    fn default() -> Self {
        Bits::new(0)
    }
}

impl Clone for Bits {
    #[inline]
    fn clone(&self) -> Self {
        Bits {
            len: self.len,
            store: self.store.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        match (&mut self.store, &source.store) {
            (Store::Heap(dst), Store::Heap(src)) => {
                self.len = source.len;
                dst.clone_from(src);
            }
            _ => *self = source.clone(),
        }
    }
}

impl PartialEq for Bits {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words() == other.words()
    }
}

impl Eq for Bits {}

impl PartialOrd for Bits {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bits {
    /// Lexicographic on `(len, words)` — identical to the ordering the
    /// previous `Vec<u64>`-backed derive produced, so sorted cube sets
    /// (e.g. [`crate::Cover::all_primes`]) are unchanged.
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.len
            .cmp(&other.len)
            .then_with(|| self.words().cmp(other.words()))
    }
}

impl Hash for Bits {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words().hash(state);
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

/// Iterator over set-bit indices of a [`Bits`], produced by
/// [`Bits::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bits: &'a Bits,
    word_index: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.bits.words().len() {
                return None;
            }
            self.current = self.bits.words()[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let b = Bits::new(100);
        assert!(b.is_zero());
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 0);
        assert!(b.first_one().is_none());
    }

    #[test]
    fn ones_has_all_bits() {
        let b = Bits::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.get(0) && b.get(69));
    }

    #[test]
    fn ones_tail_is_masked() {
        // A complement of ones must be exactly zero even with a partial word.
        let b = Bits::ones(65);
        assert!(b.not().is_zero());
        // Same for widths around the inline/heap boundary.
        for len in [1, 63, 64, 127, 128, 129, 200] {
            assert!(Bits::ones(len).not().is_zero(), "len {len}");
            assert_eq!(Bits::ones(len).count_ones() as usize, len, "len {len}");
        }
    }

    #[test]
    fn set_get_flip_across_words() {
        let mut b = Bits::new(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        b.flip(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut b = Bits::new(200);
        let idx = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idx {
            b.set(i, true);
        }
        let collected: Vec<usize> = b.iter_ones().collect();
        assert_eq!(collected, idx);
    }

    #[test]
    fn boolean_ops() {
        let mut a = Bits::new(80);
        let mut b = Bits::new(80);
        a.set(1, true);
        a.set(70, true);
        b.set(1, true);
        b.set(2, true);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![1]);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![1, 2, 70]);
        assert_eq!(a.xor(&b).iter_ones().collect::<Vec<_>>(), vec![2, 70]);
        assert_eq!(a.and_not(&b).iter_ones().collect::<Vec<_>>(), vec![70]);
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = Bits::new(10);
        let mut b = Bits::new(10);
        a.set(3, true);
        b.set(3, true);
        b.set(4, true);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut c = Bits::new(10);
        c.set(5, true);
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn first_one_positions() {
        let mut b = Bits::new(130);
        b.set(127, true);
        assert_eq!(b.first_one(), Some(127));
        b.set(3, true);
        assert_eq!(b.first_one(), Some(3));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics_in_debug() {
        Bits::new(8).get(8);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Bits::new(0)).is_empty());
    }

    #[test]
    fn inline_and_heap_agree_on_ordering_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        // Equal vectors hash equal regardless of storage class; ordering is
        // lexicographic on (len, words) for both.
        let mut small_a = Bits::new(100);
        let mut small_b = Bits::new(100);
        small_a.set(65, true);
        small_b.set(65, true);
        assert_eq!(small_a, small_b);
        let hash = |b: &Bits| {
            let mut h = DefaultHasher::new();
            b.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&small_a), hash(&small_b));
        small_b.set(2, true);
        assert_ne!(small_a, small_b);
        assert!(small_a < small_b); // word 0 of a (0) < word 0 of b (bit 2)
        let wide = Bits::new(190);
        assert!(small_a < wide); // shorter sorts first
    }

    #[test]
    fn clone_from_preserves_value() {
        let mut a = Bits::ones(150);
        let b = Bits::ones(70);
        a.clone_from(&b);
        assert_eq!(a, b);
        let mut c = Bits::new(200);
        c.clone_from(&Bits::ones(300));
        assert_eq!(c, Bits::ones(300));
    }
}
