//! Expansion of a burst-mode spec into *specified functions*: for every
//! output and every (one-hot) next-state bit, an incompletely specified
//! logic function over the combined input + state-bit space together with
//! the list of transitions it must implement hazard-free.
//!
//! Following locally-clocked practice, outputs switch at the completion of
//! the input burst and the machine is given a one-hot state assignment, so
//! each transition contributes two specified bursts:
//!
//! 1. the **input burst** in the old state (outputs/next-state excitations
//!    change at its completion point), and
//! 2. the **state burst** at the new input vector (two one-hot bits change;
//!    all outputs and excitations must hold steady).

use crate::spec::{BurstSpec, SpecError};
use asyncmap_cube::{Bits, Cover, Cube};
use std::fmt;

/// The hazard class a specified transition demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransKind {
    /// Output holds 1 throughout the burst.
    Static1,
    /// Output holds 0 throughout the burst.
    Static0,
    /// Output rises (0 → 1) at burst completion.
    Rise,
    /// Output falls (1 → 0) at burst completion.
    Fall,
}

/// One specified transition of a function.
#[derive(Debug, Clone)]
pub struct SpecTransition {
    /// Required hazard class.
    pub kind: TransKind,
    /// Start assignment (entry of the burst).
    pub start: Bits,
    /// End assignment (completion of the burst).
    pub end: Bits,
    /// The transition space `T[start, end]`.
    pub space: Cube,
}

/// An incompletely specified function with hazard requirements.
#[derive(Debug, Clone)]
pub struct SpecFunction {
    /// Signal name (an output or a next-state bit).
    pub name: String,
    /// Combined variable count (inputs + state bits).
    pub nvars: usize,
    /// Specified ON-set (unspecified points are synthesized as 0).
    pub on: Cover,
    /// Specified OFF-set (used for conflict detection only).
    pub off: Cover,
    /// Transitions that must be hazard-free.
    pub transitions: Vec<SpecTransition>,
}

impl fmt::Display for SpecFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} on-cubes, {} transitions",
            self.name,
            self.on.len(),
            self.transitions.len()
        )
    }
}

/// The full expansion of a spec: one [`SpecFunction`] per output and per
/// next-state bit, plus the combined variable naming.
#[derive(Debug, Clone)]
pub struct FlowTable {
    /// `inputs ++ state-bit` names; variable `i` of every function.
    pub var_names: Vec<String>,
    /// Number of primary inputs (the leading variables).
    pub num_inputs: usize,
    /// Output functions, then next-state-bit functions.
    pub functions: Vec<SpecFunction>,
}

/// Expands `spec` into specified functions.
///
/// # Errors
///
/// Returns [`SpecError`] if the spec is invalid or if two specified values
/// conflict (the same point required both 0 and 1 — typically a state
/// burst shared between edges with clashing values).
pub fn expand(spec: &BurstSpec) -> Result<FlowTable, SpecError> {
    let entry = spec.validate()?;
    let ni = spec.num_inputs();
    let ns = spec.num_states;
    let nvars = ni + ns;

    let mut var_names: Vec<String> = spec.input_names.clone();
    for s in 0..ns {
        var_names.push(format!("st{s}"));
    }

    // Combined assignment for (input vector, state).
    let total = |inputs: &Bits, state: usize| -> Bits {
        let mut b = Bits::new(nvars);
        for i in 0..ni {
            b.set(i, inputs.get(i));
        }
        b.set(ni + state, true);
        b
    };

    let mut functions: Vec<SpecFunction> = Vec::new();
    for o in 0..spec.num_outputs() + ns {
        let name = if o < spec.num_outputs() {
            spec.output_names[o].clone()
        } else {
            format!("y{}", o - spec.num_outputs())
        };
        functions.push(SpecFunction {
            name,
            nvars,
            on: Cover::zero(nvars),
            off: Cover::zero(nvars),
            transitions: Vec::new(),
        });
    }
    // Value of function `f` when stable in state `s`.
    let value_in = |f: usize, s: usize| -> bool {
        if f < spec.num_outputs() {
            entry.outputs[s].as_ref().expect("reachable").get(f)
        } else {
            f - spec.num_outputs() == s
        }
    };

    // Stable points.
    for s in 0..ns {
        let v = entry.inputs[s].as_ref().expect("reachable");
        let point = total(v, s);
        for (f, func) in functions.iter_mut().enumerate() {
            let cube = Cube::minterm(&point);
            if value_in(f, s) {
                func.on.push(cube);
            } else {
                func.off.push(cube);
            }
        }
    }

    for e in &spec.edges {
        let (s, t) = (e.from.0, e.to.0);
        let v_s = entry.inputs[s].as_ref().expect("reachable").clone();
        let v_t = v_s.xor(&e.input_burst);
        let alpha_in = total(&v_s, s);
        let beta_in = total(&v_t, s);
        let t_in = Cube::minterm(&alpha_in).supercube(&Cube::minterm(&beta_in));
        // State burst: inputs fixed at v_t, state bits s and t change.
        let alpha_st = beta_in.clone();
        let beta_st = total(&v_t, t);
        let t_st = Cube::minterm(&alpha_st).supercube(&Cube::minterm(&beta_st));

        for (f, func) in functions.iter_mut().enumerate() {
            let before = value_in(f, s);
            let after = value_in(f, t);
            // Input-burst transition.
            let kind = match (before, after) {
                (true, true) => TransKind::Static1,
                (false, false) => TransKind::Static0,
                (false, true) => TransKind::Rise,
                (true, false) => TransKind::Fall,
            };
            match kind {
                TransKind::Static1 => func.on.push(t_in.clone()),
                TransKind::Static0 => func.off.push(t_in.clone()),
                TransKind::Rise => {
                    // ON only at the completion point; the interior keeps
                    // the entry value 0 (outputs change only once the
                    // burst is complete and unambiguous).
                    func.on.push(Cube::minterm(&beta_in));
                    for v in e.input_burst.iter_ones() {
                        let held = t_in
                            .intersect(&literal_cube(nvars, v, v_s.get(v)))
                            .expect("burst variable is free in the space");
                        func.off.push(held);
                    }
                }
                TransKind::Fall => {
                    func.off.push(Cube::minterm(&beta_in));
                    for v in e.input_burst.iter_ones() {
                        let held = t_in
                            .intersect(&literal_cube(nvars, v, v_s.get(v)))
                            .expect("consistent");
                        func.on.push(held);
                    }
                }
            }
            func.transitions.push(SpecTransition {
                kind,
                start: alpha_in.clone(),
                end: beta_in.clone(),
                space: t_in.clone(),
            });
            // State-burst transition: hold the new value.
            let st_kind = if after {
                func.on.push(t_st.clone());
                TransKind::Static1
            } else {
                func.off.push(t_st.clone());
                TransKind::Static0
            };
            func.transitions.push(SpecTransition {
                kind: st_kind,
                start: alpha_st.clone(),
                end: beta_st.clone(),
                space: t_st.clone(),
            });
        }
    }

    // Conflict detection: specified ON and OFF regions must be disjoint.
    for func in &mut functions {
        func.on = func.on.without_contained_cubes();
        func.off = func.off.without_contained_cubes();
        for a in func.on.cubes() {
            for b in func.off.cubes() {
                if a.intersect(b).is_some() {
                    return Err(SpecError::new(
                        crate::SpecErrorKind::Conflict,
                        format!(
                            "function {}: conflicting specified values (ON {:?} vs OFF {:?})",
                            func.name, a, b
                        ),
                    ));
                }
            }
        }
    }

    Ok(FlowTable {
        var_names,
        num_inputs: ni,
        functions,
    })
}

fn literal_cube(nvars: usize, var: usize, value: bool) -> Cube {
    Cube::from_literals(
        nvars,
        [(
            asyncmap_cube::VarId(var),
            if value {
                asyncmap_cube::Phase::Pos
            } else {
                asyncmap_cube::Phase::Neg
            },
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure1_example;

    #[test]
    fn figure1_expands() {
        let spec = figure1_example();
        let flow = expand(&spec).unwrap();
        // 1 output + 2 state bits.
        assert_eq!(flow.functions.len(), 3);
        assert_eq!(flow.var_names.len(), 4); // a, b, st0, st1
        let y = &flow.functions[0];
        // Two edges × two phases = 4 specified transitions.
        assert_eq!(y.transitions.len(), 4);
        // y rises on the first edge, falls on the second.
        assert!(y.transitions.iter().any(|t| t.kind == TransKind::Rise));
        assert!(y.transitions.iter().any(|t| t.kind == TransKind::Fall));
    }

    #[test]
    fn on_off_are_disjoint() {
        let spec = figure1_example();
        let flow = expand(&spec).unwrap();
        for f in &flow.functions {
            for a in f.on.cubes() {
                for b in f.off.cubes() {
                    assert!(a.intersect(b).is_none(), "{}: {:?} vs {:?}", f.name, a, b);
                }
            }
        }
    }

    #[test]
    fn rise_on_set_is_completion_point_only() {
        let spec = figure1_example();
        let flow = expand(&spec).unwrap();
        let y = &flow.functions[0];
        let rise = y
            .transitions
            .iter()
            .find(|t| t.kind == TransKind::Rise)
            .unwrap();
        // The end point is ON, the start is not.
        assert!(y.on.eval(&rise.end));
        assert!(!y.on.eval(&rise.start));
    }
}
