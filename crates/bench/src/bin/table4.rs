//! Regenerates **Table 4** — synchronous vs asynchronous mapper run times
//! for the SCSI and ABCS controllers across all four libraries.
//!
//! Paper values (DEC 5000, depth 5):
//!
//! ```text
//! SCSI  sync:   —   17.8  14.0  31.7      async: 22.9  28.1  20.7  44.2
//! ABCS  sync:  6.3   8.7   5.7  22.9      async: 10.2  13.5   9.0  28.1
//!              Actel  LSI  CMOS3  GDT
//! ```
//!
//! The shape to reproduce: the asynchronous mapper is slower, with the
//! overhead driven by the number of hazardous elements in the library.

use asyncmap_bench::{header, libraries, secs, time_median};
use asyncmap_core::{async_tmap, tmap, MapOptions};

fn main() {
    header(
        "Table 4: sync vs async mapper run time (depth of 5)",
        &format!(
            "{:6} {:8} {:>10} {:>10} {:>10} {:>8} {:>8}",
            "Design", "Library", "Sync", "Async", "Overhead", "Checks", "Rejects"
        ),
    );
    for design in ["scsi", "abcs"] {
        let eqs = asyncmap_burst::benchmark(design);
        for mut lib in libraries() {
            lib.annotate_hazards();
            let opts = MapOptions::default();
            let sync_t = time_median(3, || tmap(&eqs, &lib, &opts).expect("mappable").area);
            let mut stats = None;
            let async_t = time_median(3, || {
                let d = async_tmap(&eqs, &lib, &opts).expect("mappable");
                stats = Some(d.stats);
                d.area
            });
            let stats = stats.expect("ran");
            println!(
                "{:6} {:8} {:>10} {:>10} {:>9.0}% {:>8} {:>8}",
                design,
                lib.name(),
                secs(sync_t),
                secs(async_t),
                100.0 * (async_t.as_secs_f64() - sync_t.as_secs_f64())
                    / sync_t.as_secs_f64().max(1e-9),
                stats.hazard_checks,
                stats.hazard_rejects
            );
        }
    }
    println!(
        "\npaper: async 50–60% slower in most cases; overhead grows with hazardous-element count"
    );
}
