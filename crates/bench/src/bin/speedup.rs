//! Times the parallel cone-mapping engine and the shared hazard-verdict
//! cache, emitting a machine-readable `BENCH_mapping.json`.
//!
//! Two experiments:
//!
//! * **Parallel covering** — `scsi` (41 cones) and `abcs` (30 cones) on
//!   LSI9K, sequential vs N worker threads. The mapped designs are checked
//!   to be identical (area, delay, instance count) before the numbers are
//!   reported.
//! * **Warm verdict cache** — `pe-send-ifc` on Actel (the hazard-heaviest
//!   pairing: every cover performs hundreds of containment checks), mapped
//!   with a cold cache vs a pre-warmed shared cache via `async_tmap_cached`.
//!   Cache misses equal actual `hazards_subset` evaluations, so the warm
//!   run must show strictly fewer.
//!
//! * **Generated large design** — a seeded 50 000-gate multi-cone design
//!   from the workload generator (`gen50000-s7`), sequential vs N worker
//!   threads, timed with fewer samples (each map runs orders of magnitude
//!   longer than the built-ins). Same bit-identity check as above.
//!
//! Usage: `speedup [--runs N] [--threads N] [--out PATH]`
//! (defaults: 9 runs, 4 threads, `BENCH_mapping.json`). Every timed
//! configuration is preceded by untimed warm-up runs (see
//! [`asyncmap_bench::WARMUP_RUNS`]) so first-touch page faults and cold
//! allocator arenas never land in a sample.

use asyncmap_bench::{
    design_fingerprint, header, host_cpus, secs, time_median, time_median_pair, write_json,
    BenchRecord, GenSpec,
};
use asyncmap_core::{async_tmap, async_tmap_cached, HazardCache, MapOptions, MappedDesign};
use asyncmap_library::builtin;
use std::sync::Arc;

/// `None` when the run performed no hazard checks: the scsi/abcs × LSI9K
/// pairings never consult the verdict cache, and a hit rate over zero
/// lookups would read as a (misleading) hard zero in the report.
fn hit_rate(d: &MappedDesign) -> Option<f64> {
    let total = d.stats.cache_hits + d.stats.cache_misses;
    (total > 0).then(|| d.stats.cache_hits as f64 / total as f64)
}

/// NPN match-memo hit rate; `None` when the memo is off or unused.
fn npn_rate(d: &MappedDesign) -> Option<f64> {
    let total = d.stats.npn_hits + d.stats.npn_misses;
    (total > 0).then(|| d.stats.npn_hits as f64 / total as f64)
}

fn main() {
    let mut runs = 9usize;
    let mut threads = 4usize;
    let mut out = "BENCH_mapping.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--runs" => runs = value("--runs").parse().expect("bad --runs"),
            "--threads" => threads = value("--threads").parse().expect("bad --threads"),
            "--out" => out = value("--out"),
            other => panic!("unknown argument {other:?} (try --runs/--threads/--out)"),
        }
    }

    let cpus = host_cpus();
    let oversubscribed = cpus < threads;
    if oversubscribed {
        println!(
            "note: host exposes {cpus} CPU(s) but --threads is {threads}; parallel \
             configurations are oversubscribed, so speedup_vs_seq is not reported"
        );
    }
    let mut records = Vec::new();

    header(
        "Parallel cone covering (LSI9K)",
        &format!(
            "{:12} {:>8} {:>12} {:>12} {:>9}",
            "Design", "Cones", "Sequential", "Parallel", "Speedup"
        ),
    );
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    for design in ["scsi", "abcs"] {
        let eqs = asyncmap_burst::benchmark(design);
        let seq_opts = MapOptions {
            threads: 1,
            ..MapOptions::default()
        };
        let par_opts = MapOptions {
            threads,
            ..MapOptions::default()
        };
        let seq_design = async_tmap(&eqs, &lib, &seq_opts).expect("mappable");
        let par_design = async_tmap(&eqs, &lib, &par_opts).expect("mappable");
        assert_eq!(
            design_fingerprint(&seq_design),
            design_fingerprint(&par_design),
            "{design}: parallel mapping diverged from sequential"
        );
        let (seq_t, par_t) = time_median_pair(
            runs,
            || async_tmap(&eqs, &lib, &seq_opts).expect("mappable"),
            || async_tmap(&eqs, &lib, &par_opts).expect("mappable"),
        );
        let ratio = seq_t.as_secs_f64() / par_t.as_secs_f64().max(1e-9);
        println!(
            "{:12} {:>8} {:>12} {:>12} {:>8.2}x",
            design,
            seq_design.stats.cones,
            secs(seq_t),
            secs(par_t),
            ratio
        );
        if !seq_design.stats.phases.is_zero() {
            for (phase, t, calls) in seq_design.stats.phases.entries() {
                if calls > 0 {
                    println!("  {:18} {:>10.1} ms  {:>8} call(s)", phase, t * 1e3, calls);
                }
            }
        }
        records.push(BenchRecord {
            name: format!("{design}/seq"),
            median: seq_t,
            threads: 1,
            host_cpus: cpus,
            cache_hit_rate: hit_rate(&seq_design),
            npn_hit_rate: npn_rate(&seq_design),
            phases: seq_design.stats.phases,
            speedup_vs_seq: None,
        });
        records.push(BenchRecord {
            name: format!("{design}/par{threads}"),
            median: par_t,
            threads,
            host_cpus: cpus,
            cache_hit_rate: hit_rate(&par_design),
            npn_hit_rate: npn_rate(&par_design),
            phases: par_design.stats.phases,
            speedup_vs_seq: (!oversubscribed).then_some(ratio),
        });
    }

    header(
        "Generated large design (LSI9K)",
        &format!(
            "{:12} {:>8} {:>12} {:>12} {:>9}",
            "Design", "Cones", "Sequential", "Parallel", "Speedup"
        ),
    );
    {
        let spec = GenSpec {
            target_gates: 50_000,
            inputs: 16,
            seed: 7,
        };
        let eqs = asyncmap_bench::generate(&spec);
        let seq_opts = MapOptions {
            threads: 1,
            ..MapOptions::default()
        };
        let par_opts = MapOptions {
            threads,
            ..MapOptions::default()
        };
        let seq_design = async_tmap(&eqs, &lib, &seq_opts).expect("mappable");
        let par_design = async_tmap(&eqs, &lib, &par_opts).expect("mappable");
        assert_eq!(
            design_fingerprint(&seq_design),
            design_fingerprint(&par_design),
            "{}: parallel mapping diverged from sequential",
            spec.name()
        );
        // Each map takes seconds, so sample a third as often as the
        // built-ins (at least 3 for a meaningful median).
        let gen_runs = (runs / 3).max(3);
        let (seq_t, par_t) = time_median_pair(
            gen_runs,
            || async_tmap(&eqs, &lib, &seq_opts).expect("mappable"),
            || async_tmap(&eqs, &lib, &par_opts).expect("mappable"),
        );
        let ratio = seq_t.as_secs_f64() / par_t.as_secs_f64().max(1e-9);
        println!(
            "{:12} {:>8} {:>12} {:>12} {:>8.2}x",
            spec.name(),
            seq_design.stats.cones,
            secs(seq_t),
            secs(par_t),
            ratio
        );
        records.push(BenchRecord {
            name: format!("{}/seq", spec.name()),
            median: seq_t,
            threads: 1,
            host_cpus: cpus,
            cache_hit_rate: hit_rate(&seq_design),
            npn_hit_rate: npn_rate(&seq_design),
            phases: seq_design.stats.phases,
            speedup_vs_seq: None,
        });
        records.push(BenchRecord {
            name: format!("{}/par{threads}", spec.name()),
            median: par_t,
            threads,
            host_cpus: cpus,
            cache_hit_rate: hit_rate(&par_design),
            npn_hit_rate: npn_rate(&par_design),
            phases: par_design.stats.phases,
            speedup_vs_seq: (!oversubscribed).then_some(ratio),
        });
    }

    header(
        "Shared hazard-verdict cache (Actel)",
        &format!(
            "{:12} {:>8} {:>8} {:>12} {:>12}",
            "Design", "Checks", "Evals", "Cold", "Warm"
        ),
    );
    let mut actel = builtin::actel();
    actel.annotate_hazards();
    for design in ["pe-send-ifc", "dme"] {
        let eqs = asyncmap_burst::benchmark(design);
        let opts = MapOptions {
            threads: 1,
            ..MapOptions::default()
        };
        // Cold: a fresh cache every run (async_tmap's own behavior).
        let mut cold_design = None;
        let cold_t = time_median(runs, || {
            let d = async_tmap(&eqs, &actel, &opts).expect("mappable");
            cold_design = Some(d);
        });
        let cold_design = cold_design.expect("ran");
        // Warm: one shared cache, pre-warmed by a throwaway run.
        let cache = Arc::new(HazardCache::new());
        let _ = async_tmap_cached(&eqs, &actel, &opts, &cache).expect("mappable");
        let mut warm_design = None;
        let warm_t = time_median(runs, || {
            let d = async_tmap_cached(&eqs, &actel, &opts, &cache).expect("mappable");
            warm_design = Some(d);
        });
        let warm_design = warm_design.expect("ran");
        assert_eq!(
            design_fingerprint(&cold_design),
            design_fingerprint(&warm_design),
            "{design}: warm cache changed the mapped design"
        );
        assert!(
            warm_design.stats.cache_misses < cold_design.stats.cache_misses,
            "{design}: warm run must evaluate strictly fewer hazard subsets \
             (cold {} vs warm {})",
            cold_design.stats.cache_misses,
            warm_design.stats.cache_misses
        );
        println!(
            "{:12} {:>8} {:>3}->{:<3} {:>12} {:>12}",
            design,
            cold_design.stats.hazard_checks,
            cold_design.stats.cache_misses,
            warm_design.stats.cache_misses,
            secs(cold_t),
            secs(warm_t)
        );
        records.push(BenchRecord {
            name: format!("{design}/cold"),
            median: cold_t,
            threads: 1,
            host_cpus: cpus,
            cache_hit_rate: hit_rate(&cold_design),
            npn_hit_rate: npn_rate(&cold_design),
            phases: cold_design.stats.phases,
            speedup_vs_seq: None,
        });
        records.push(BenchRecord {
            name: format!("{design}/warm"),
            median: warm_t,
            threads: 1,
            host_cpus: cpus,
            cache_hit_rate: hit_rate(&warm_design),
            npn_hit_rate: npn_rate(&warm_design),
            phases: warm_design.stats.phases,
            speedup_vs_seq: Some(cold_t.as_secs_f64() / warm_t.as_secs_f64().max(1e-9)),
        });
    }

    write_json(&out, &records).expect("write JSON report");
    println!("\nwrote {} record(s) to {out}", records.len());
}
