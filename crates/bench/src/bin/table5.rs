//! Regenerates **Table 5** — asynchronous mapping results (CPU time,
//! critical-path delay, area) for the eleven benchmark controllers on two
//! libraries (the paper prints an ASIC library and CMOS3; we use LSI9K and
//! CMOS3).
//!
//! Absolute numbers differ from a 1993 DEC 5000/240; the shape to
//! reproduce is the complexity ordering (dean-ctrl largest, then scsi,
//! oscsi-ctrl, abcs, pe-send-ifc, then the small DME/chu/vanbek designs)
//! and area costs that are relative to each particular library.

use asyncmap_bench::header;
use asyncmap_core::{async_tmap, MapOptions};
use std::time::Instant;

fn main() {
    header(
        "Table 5: asynchronous mapper on the benchmark suite (depth of 5)",
        &format!(
            "{:13} | {:>8} {:>9} {:>7} | {:>8} {:>9} {:>7}",
            "Design", "LSI CPU", "delay", "area", "CMOS3", "delay", "area"
        ),
    );
    let mut lsi = asyncmap_library::builtin::lsi9k();
    lsi.annotate_hazards();
    let mut cmos3 = asyncmap_library::builtin::cmos3();
    cmos3.annotate_hazards();
    let opts = MapOptions::default();
    for def in asyncmap_burst::BENCHMARKS {
        let eqs = asyncmap_burst::benchmark(def.name);
        let mut cells = Vec::new();
        for lib in [&lsi, &cmos3] {
            let t = Instant::now();
            let design = async_tmap(&eqs, lib, &opts).expect("mappable");
            let cpu = t.elapsed();
            assert!(design.verify_function(lib), "{}: broken", def.name);
            cells.push(format!(
                "{:>7.2}s {:>7.2}ns {:>7.0}",
                cpu.as_secs_f64(),
                design.delay,
                design.area
            ));
        }
        println!("{:13} | {} | {}", def.name, cells[0], cells[1]);
    }
    println!("\npaper (LSI columns): chu-ad-opt .6s/24ns/152 … dean-ctrl 33.6s/126ns/11320, scsi 20.7s/95ns/6888, abcs 9s/74.7ns/3288");
}
