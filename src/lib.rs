//! # asyncmap
//!
//! A from-scratch reproduction of *Siegel, De Micheli, Dill — "Automatic
//! Technology Mapping for Generalized Fundamental-Mode Asynchronous
//! Designs"* (Stanford CSL-TR-93-580 / DAC 1993): a hazard-aware
//! technology mapper for burst-mode asynchronous controllers, together
//! with every substrate it needs (cube/SOP algebra, a BDD package, Boolean
//! factored forms, the paper's hazard-analysis algorithms, a logic-network
//! layer, synthetic standard-cell libraries and a burst-mode synthesis
//! front end).
//!
//! The facade re-exports each subsystem as a module:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`cube`] | `asyncmap-cube` | `USED`/`PHASE` cubes, covers, primes |
//! | [`bdd`] | `asyncmap-bdd` | hash-consed ROBDDs |
//! | [`bff`] | `asyncmap-bff` | Boolean factored forms, flattening, paths |
//! | [`hazard`] | `asyncmap-hazard` | §4 hazard analysis + waveform oracle |
//! | [`network`] | `asyncmap-network` | subject networks, decomposition, cones |
//! | [`library`] | `asyncmap-library` | cells, libraries, Table 1 builtins |
//! | [`mapper`] | `asyncmap-core` | `tmap` / `async_tmap` / `hand_map` |
//! | [`burst`] | `asyncmap-burst` | burst-mode specs, hazard-free synthesis, Table 5 benchmarks |
//! | [`audit`] | `asyncmap-audit` | translation-validation certificate replay, spec checking |
//! | [`genlib`] | `asyncmap-genlib` | genlib cell-library frontend |
//! | [`blif`] | `asyncmap-blif` | BLIF netlist frontend + SOP collapse |
//! | [`preflight`] | `asyncmap-preflight` | static (library, design) qualification |
//!
//! # Quickstart
//!
//! ```
//! use asyncmap::prelude::*;
//!
//! // A burst-mode controller (paper Figure 1), synthesized to hazard-free
//! // equations and mapped to a mux-rich commercial library.
//! let eqs = asyncmap::burst::benchmark("dme-fast");
//! let mut lib = asyncmap::library::builtin::lsi9k();
//! lib.annotate_hazards();
//! let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
//! assert!(design.verify_function(&lib));
//! assert!(design.verify_hazards(&lib));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asyncmap_audit as audit;
pub use asyncmap_bdd as bdd;
pub use asyncmap_bench as bench;
pub use asyncmap_bff as bff;
pub use asyncmap_blif as blif;
pub use asyncmap_burst as burst;
pub use asyncmap_core as mapper;
pub use asyncmap_cube as cube;
pub use asyncmap_fma as fma;
pub use asyncmap_genlib as genlib;
pub use asyncmap_hazard as hazard;
pub use asyncmap_library as library;
pub use asyncmap_lint as lint;
pub use asyncmap_network as network;
pub use asyncmap_preflight as preflight;
pub use asyncmap_report as report;

/// The most common items, for glob import.
pub mod prelude {
    pub use asyncmap_bff::Expr;
    pub use asyncmap_core::{
        async_tmap, hand_map, hdc_tmap, tmap, EcoOutcome, EcoSession, EcoStats, MapOptions,
        MappedDesign, Objective,
    };
    pub use asyncmap_cube::{Cover, Cube, VarTable};
    pub use asyncmap_fma::{analyze_design, analyze_design_with_spec, FmaCache, FmaReport};
    pub use asyncmap_hazard::{analyze_expr, hazards_subset, HazardReport};
    pub use asyncmap_library::{builtin, Cell, Library};
    pub use asyncmap_lint::{lint_mapped_design, LintReport};
    pub use asyncmap_network::EquationSet;
    pub use asyncmap_preflight::{preflight, PreflightReport};
}

/// Installs the independent lint pass ([`lint::lint_mapped_design`]) as the
/// mapper's post-map hook, so `ASYNCMAP_LINT=1` makes every
/// [`prelude::async_tmap`] call verify its own output and panic with the
/// rendered report on any finding. Idempotent.
///
/// The hook indirection exists because `asyncmap-core` cannot depend on
/// `asyncmap-lint`: the lint pass is only trustworthy while it shares no
/// code with the mapper it checks.
pub fn install_lint_hook() {
    asyncmap_core::set_post_map_hook(|design, library| {
        let report = asyncmap_lint::lint_mapped_design(design, library);
        if report.is_clean() {
            Ok(())
        } else {
            Err(report.render())
        }
    });
}

/// Installs the translation-validation checker
/// ([`audit::check_pipeline`]) as the mapper's post-transform hook, so
/// `ASYNCMAP_AUDIT=1` makes every [`prelude::async_tmap`] call replay the
/// front end's certificate trail (decomposition rewrite steps, partition
/// cuts, cone flatten traces) and panic with the rendered report on any
/// failing certificate. Idempotent.
///
/// The hook indirection exists because `asyncmap-core` cannot depend on
/// `asyncmap-audit`: the replay only certifies the transformations while
/// it shares no code with them.
pub fn install_audit_hook() {
    asyncmap_core::set_post_transform_hook(|eqs, net, dtrace, cones, ptrace| {
        let report = asyncmap_audit::check_pipeline(eqs, net, dtrace, cones, ptrace);
        if report.is_clean() {
            Ok(report.counters.num_certificates())
        } else {
            Err(report.render())
        }
    });
}

/// Installs the whole-design fundamental-mode analyzer
/// ([`fma::analyze_design`]) as the mapper's post-analyze hook, so
/// `ASYNCMAP_FMA=1` makes every [`prelude::async_tmap`] and
/// [`prelude::EcoSession`] remap statically analyze its own output —
/// instance-graph structure and cross-cone hazard containment — and
/// panic with the rendered report on any error-severity finding.
/// Idempotent.
///
/// The hook shares one process-wide [`fma::FmaCache`], so an ECO loop's
/// re-analyses reuse every cone whose (shape, cover) already analyzed
/// clean. The hook indirection exists for the same reason as the lint
/// one: `asyncmap-core` cannot depend on the checker that judges it.
pub fn install_fma_hook() {
    asyncmap_core::set_post_analyze_hook(|design, library| {
        static CACHE: std::sync::Mutex<Option<asyncmap_fma::FmaCache>> =
            std::sync::Mutex::new(None);
        let mut guard = CACHE.lock().expect("fma hook cache poisoned");
        let cache = guard.get_or_insert_with(asyncmap_fma::FmaCache::new);
        let report = asyncmap_fma::analyze_design_cached(design, library, cache);
        if report.num_errors() == 0 {
            Ok(report.counters.cones)
        } else {
            Err(report.render())
        }
    });
}

/// Installs the static qualification analyzer ([`preflight::preflight`])
/// as the mapper's pre-map hook, so `ASYNCMAP_PREFLIGHT=1` makes every
/// [`prelude::async_tmap`] call qualify its (design, library) pair before
/// any mapping work and panic with the rendered report on any
/// error-severity finding (warnings are tolerated, matching the
/// `preflight` subcommand's exit gate). Idempotent.
///
/// The hook indirection exists for the same reason as the lint one:
/// `asyncmap-core` cannot depend on the analyzer that judges its inputs.
pub fn install_preflight_hook() {
    asyncmap_core::set_pre_map_hook(|eqs, library| {
        let report = asyncmap_preflight::preflight(eqs, library);
        if report.num_errors() == 0 {
            Ok(())
        } else {
            Err(report.render())
        }
    });
}

/// Loads a library from any supported source, by extension: `.genlib`
/// files go through the genlib frontend ([`genlib::parse_genlib`]),
/// `.lib` files through the native [`library::Library::parse`] format,
/// and anything else is tried as a built-in library name
/// ([`library::builtin::library`]: `lsi9k`, `cmos3`, `gdt`, `actel`).
/// The returned library is not hazard-annotated.
pub fn load_library_auto(source: &str) -> Result<library::Library, String> {
    if source.ends_with(".genlib") {
        let text = std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?;
        let name = std::path::Path::new(source)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("genlib");
        let parsed = genlib::parse_genlib(&text, name).map_err(|e| format!("{source}: {e}"))?;
        Ok(parsed.to_library())
    } else if std::path::Path::new(source).is_file() {
        let text = std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?;
        library::Library::parse(&text).map_err(|e| format!("{source}: {e}"))
    } else {
        let lower = source.to_ascii_lowercase();
        library::builtin::library(&lower).ok_or_else(|| {
            format!(
                "unknown library {source:?}: expected a .lib or .genlib path, or one of {}",
                library::builtin::LIBRARY_NAMES.join(", ")
            )
        })
    }
}

/// Synthesizes a burst-mode specification to hazard-free equations.
fn synthesize_spec(spec: &burst::BurstSpec, source: &str) -> Result<network::EquationSet, String> {
    let flow = burst::expand(spec).map_err(|e| format!("{source}: {e}"))?;
    let mut vars = cube::VarTable::new();
    for n in &flow.var_names {
        vars.intern(n);
    }
    let mut equations = Vec::new();
    for f in &flow.functions {
        let cover = burst::hazard_free_cover(f).map_err(|e| format!("{source}: {e}"))?;
        equations.push((f.name.clone(), cover));
    }
    Ok(network::EquationSet::new(vars, equations))
}

/// Loads a design from any supported source, together with its burst-mode
/// specification when it has one. `.blif` netlists are parsed and
/// collapsed ([`blif::parse_blif`] + [`blif::BlifNetlist::to_equations`]);
/// `.bms` burst-mode specifications are expanded and synthesized to
/// hazard-free equations; other file paths are sniffed — a `gen --emit`
/// equation dump (leading `inputs` header, [`bench::parse_design`]) is
/// read directly, anything else is tried as a `.bms` spec; a non-path is
/// tried as a built-in benchmark name ([`burst::BENCHMARKS`]). Only the
/// `.bms`/benchmark sources carry a spec.
pub fn load_design_with_spec(
    source: &str,
) -> Result<(network::EquationSet, Option<burst::BurstSpec>), String> {
    if source.ends_with(".blif") {
        let text = std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?;
        let name = std::path::Path::new(source)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("blif");
        let net = blif::parse_blif(&text, name).map_err(|e| format!("{source}: {e}"))?;
        let eqs = net
            .to_equations(&blif::CollapseLimits::default())
            .map_err(|e| format!("{source}: {e}"))?;
        Ok((eqs, None))
    } else if std::path::Path::new(source).is_file() {
        let text = std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"))?;
        let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
        if !source.ends_with(".bms") && first.trim_start().starts_with("inputs") {
            return Ok((bench::parse_design(&text), None));
        }
        let spec = burst::parse_bms(&text).map_err(|e| format!("{source}: {e}"))?;
        let eqs = synthesize_spec(&spec, source)?;
        Ok((eqs, Some(spec)))
    } else if burst::BENCHMARKS.iter().any(|d| d.name == source) {
        Ok((
            burst::benchmark(source),
            Some(burst::benchmark_spec(source)),
        ))
    } else {
        let names: Vec<&str> = burst::BENCHMARKS.iter().map(|d| d.name).collect();
        Err(format!(
            "unknown design {source:?}: expected a .blif, .bms or equation-dump path, \
             or one of {}",
            names.join(", ")
        ))
    }
}

/// Loads a design from any supported source ([`load_design_with_spec`]
/// without the spec).
pub fn load_design_auto(source: &str) -> Result<network::EquationSet, String> {
    load_design_with_spec(source).map(|(eqs, _)| eqs)
}
