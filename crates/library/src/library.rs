//! Cell libraries: collections of [`Cell`]s with load-time hazard
//! annotation (the asynchronous mapper's extra initialization step,
//! Table 2) and a small text format.

use crate::Cell;
use std::error::Error;
use std::fmt;

/// A technology library.
#[derive(Debug, Clone, Default)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
    annotated: bool,
}

impl Library {
    /// Creates an empty library called `name`.
    pub fn new(name: &str) -> Self {
        Library {
            name: name.to_owned(),
            cells: Vec::new(),
            annotated: false,
        }
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a cell.
    ///
    /// # Panics
    ///
    /// Panics if a cell with the same name already exists.
    pub fn add(&mut self, cell: Cell) {
        assert!(
            self.cell(cell.name()).is_none(),
            "duplicate cell {:?} in library {:?}",
            cell.name(),
            self.name
        );
        self.annotated = false;
        self.cells.push(cell);
    }

    /// The cells, in insertion order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name() == name)
    }

    /// Annotates every cell with its hazard characterization — the extra
    /// work the asynchronous mapper does when reading a library
    /// (paper §3.2, Table 2). Idempotent.
    ///
    /// Cells are annotated independently, so the work is spread over all
    /// available cores. Annotation cost varies strongly with pin count, so
    /// workers claim cell indices from a lock-free atomic counter
    /// (dynamic balancing without a mutex on the work queue), analyze the
    /// cells through shared references, and the reports are committed
    /// index-by-index afterwards.
    /// # Examples
    ///
    /// ```
    /// let mut lib = asyncmap_library::builtin::lsi9k();
    /// lib.annotate_hazards();
    /// assert_eq!(lib.hazardous_cells().len(), 12); // the muxes (Table 1)
    /// ```
    pub fn annotate_hazards(&mut self) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pending: Vec<usize> = (0..self.cells.len())
            .filter(|&i| self.cells[i].hazards().is_none())
            .collect();
        let threads = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(pending.len());
        if threads <= 1 {
            for cell in &mut self.cells {
                cell.annotate();
            }
        } else {
            let cells = &self.cells;
            let next = AtomicUsize::new(0);
            let reports: Vec<(usize, asyncmap_hazard::HazardReport)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            scope.spawn(|| {
                                let mut local = Vec::new();
                                loop {
                                    let k = next.fetch_add(1, Ordering::Relaxed);
                                    let Some(&i) = pending.get(k) else { break };
                                    local.push((i, cells[i].compute_hazards()));
                                }
                                local
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("annotation worker panicked"))
                        .collect()
                });
            for (i, report) in reports {
                self.cells[i].set_hazards(report);
            }
        }
        self.annotated = true;
    }

    /// `true` once [`Library::annotate_hazards`] has run.
    pub fn is_annotated(&self) -> bool {
        self.annotated
    }

    /// The hazardous cells (requires annotation) — the content of the
    /// paper's Table 1.
    ///
    /// # Panics
    ///
    /// Panics if the library is not annotated.
    pub fn hazardous_cells(&self) -> Vec<&Cell> {
        assert!(self.annotated, "library {:?} not annotated", self.name);
        self.cells.iter().filter(|c| c.is_hazardous()).collect()
    }

    /// Parses the text format:
    ///
    /// ```text
    /// library LSI9K
    /// # comment
    /// cell ND2 delay=0.3 bff=(a*b)'
    /// cell MUX2 delay=0.6 area=12 bff=s*a + s'*b
    /// ```
    ///
    /// `area` defaults to the BFF literal count; `bff=` consumes the rest
    /// of the line.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed lines, duplicate cells or missing
    /// header.
    pub fn parse(text: &str) -> Result<Library, ParseLibraryError> {
        let mut lib: Option<Library> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: String| ParseLibraryError {
                line: lineno + 1,
                message: msg,
            };
            if let Some(rest) = line.strip_prefix("library ") {
                if lib.is_some() {
                    return Err(err("duplicate library header".into()));
                }
                lib = Some(Library::new(rest.trim()));
                continue;
            }
            let Some(rest) = line.strip_prefix("cell ") else {
                return Err(err(format!("unrecognized line {line:?}")));
            };
            let lib = lib
                .as_mut()
                .ok_or_else(|| err("cell before library header".into()))?;
            let (head, bff_text) = rest
                .split_once("bff=")
                .ok_or_else(|| err("missing bff= field".into()))?;
            let mut head_tokens = head.split_whitespace();
            let name = head_tokens
                .next()
                .ok_or_else(|| err("missing cell name".into()))?;
            let mut delay: Option<f64> = None;
            let mut area: Option<f64> = None;
            for tok in head_tokens {
                if let Some(v) = tok.strip_prefix("delay=") {
                    delay = Some(v.parse().map_err(|e| err(format!("bad delay: {e}")))?);
                } else if let Some(v) = tok.strip_prefix("area=") {
                    area = Some(v.parse().map_err(|e| err(format!("bad area: {e}")))?);
                } else {
                    return Err(err(format!("unknown field {tok:?}")));
                }
            }
            let delay = delay.ok_or_else(|| err(format!("cell {name:?} missing delay")))?;
            if lib.cell(name).is_some() {
                return Err(err(format!("duplicate cell {name:?}")));
            }
            let mut pins = asyncmap_cube::VarTable::new();
            let bff = asyncmap_bff::Expr::parse(bff_text.trim(), &mut pins)
                .map_err(|e| err(format!("cell {name:?}: {e}")))?;
            let area = area.unwrap_or_else(|| f64::from(bff.num_literals()));
            lib.add(Cell::new(name, pins, bff, area, delay));
        }
        lib.ok_or(ParseLibraryError {
            line: 0,
            message: "missing library header".into(),
        })
    }

    /// Serializes to the text format accepted by [`Library::parse`].
    pub fn to_text(&self) -> String {
        let mut out = format!("library {}\n", self.name);
        for c in &self.cells {
            out.push_str(&format!(
                "cell {} delay={} area={} bff={}\n",
                c.name(),
                c.delay(),
                c.area(),
                c.bff().display(c.pins())
            ));
        }
        out
    }
}

/// Error produced when library parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLibraryError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseLibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "library parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseLibraryError {}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
library TEST
# two plain gates and a mux
cell INV delay=0.2 bff=a'
cell ND2 delay=0.3 bff=(a*b)'
cell MUX2 delay=0.6 area=12 bff=s*a + s'*b
";

    #[test]
    fn parse_roundtrip() {
        let lib = Library::parse(SAMPLE).unwrap();
        assert_eq!(lib.name(), "TEST");
        assert_eq!(lib.len(), 3);
        assert_eq!(lib.cell("MUX2").unwrap().area(), 12.0);
        assert_eq!(lib.cell("ND2").unwrap().area(), 2.0);
        let again = Library::parse(&lib.to_text()).unwrap();
        assert_eq!(again.len(), 3);
        assert_eq!(again.cell("MUX2").unwrap().num_inputs(), 3);
    }

    #[test]
    fn annotation_finds_the_mux() {
        let mut lib = Library::parse(SAMPLE).unwrap();
        assert!(!lib.is_annotated());
        lib.annotate_hazards();
        assert!(lib.is_annotated());
        let hazardous = lib.hazardous_cells();
        assert_eq!(hazardous.len(), 1);
        assert_eq!(hazardous[0].name(), "MUX2");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Library::parse("library X\ncell BAD delay=0.1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bff="));
        let err2 = Library::parse("cell A delay=1 bff=a\n").unwrap_err();
        assert!(err2.message.contains("before library header"));
        let err3 = Library::parse("").unwrap_err();
        assert!(err3.message.contains("missing library header"));
    }

    #[test]
    fn duplicate_cells_rejected() {
        let text = "library X\ncell A delay=1 bff=a\ncell A delay=1 bff=a'\n";
        assert!(Library::parse(text).is_err());
    }

    #[test]
    #[should_panic(expected = "not annotated")]
    fn hazardous_cells_requires_annotation() {
        let lib = Library::parse(SAMPLE).unwrap();
        lib.hazardous_cells();
    }
}
