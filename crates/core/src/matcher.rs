//! Boolean matching of clusters against library cells, with the
//! asynchronous hazard filter of §3.2.2.
//!
//! Matching is CERES-style Boolean (function-based, structure-blind):
//! a cell matches a cluster when some pin permutation makes their functions
//! equal. Candidates are pruned with cheap signatures (support size, onset
//! count, per-input cofactor sizes) before the permutation search.
//!
//! Because Boolean matching ignores structure, it can propose structurally
//! *worse* implementations (paper Figure 3): the asynchronous matcher
//! therefore accepts a hazardous cell only when
//! `hazards(cell) ⊆ hazards(cluster)` under the pin binding
//! ([`asyncmap_hazard::hazards_subset`]).

use crate::cluster::{Cluster, CutCluster};
use crate::fxhash::FxBuildHasher;
use crate::hcache::{HazardCache, MatchMemo, MemoBinding, WideBinding};
use crate::profile::{self, MapPhase};
use crate::truth;
use asyncmap_bff::Expr;
use asyncmap_cube::{Bits, Phase, VarId};
use asyncmap_hazard::hazards_subset;
use asyncmap_library::Library;
use asyncmap_network::Network;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Signature-index key: candidate cells and clusters can only match when
/// their support sizes, onset sizes, and (permutation-invariant) multisets
/// of per-input signatures all agree.
type SigKey = (usize, u32, Vec<u32>);

/// Precomputed matching data for one library cell.
#[derive(Debug, Clone)]
struct CellEntry {
    index: usize,
    ninputs: usize,
    truth: Bits,
    /// Packed copy of `truth` when the cell has ≤ 6 inputs (the common
    /// case), enabling the word-level permutation search.
    truth6: Option<u64>,
    onset: u32,
    input_sigs: Vec<u32>,
    hazardous: bool,
}

/// A successful match: a cell plus the binding of cell pins to cluster
/// leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Index of the cell in the library.
    pub cell_index: usize,
    /// `pin_to_leaf[p]` = index into the cluster's (support-reduced) leaf
    /// list bound to cell pin `p`.
    pub pin_to_leaf: Vec<usize>,
}

/// How the matcher treats hazardous cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardPolicy {
    /// Synchronous flow: structure is ignored (paper `tmap`).
    Ignore,
    /// Asynchronous flow: a hazardous cell must satisfy
    /// `hazards(cell) ⊆ hazards(cluster)` (paper `async_tmap`).
    SubsetCheck,
}

/// A snapshot of a matcher's accumulating counters (see
/// [`Matcher::counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatcherCounters {
    /// Hazard-containment checks performed.
    pub hazard_checks: usize,
    /// Matches rejected by the hazard filter.
    pub hazard_rejects: usize,
    /// Match-memo lookups served from the memo.
    pub npn_hits: usize,
    /// Match-memo lookups that fell through to the permutation search.
    pub npn_misses: usize,
}

impl MatcherCounters {
    /// Counter increments since `earlier` (saturating, so a
    /// [`Matcher::reset_counters`] between the snapshots yields zeros
    /// rather than wrapping).
    pub fn delta(&self, earlier: &MatcherCounters) -> MatcherCounters {
        MatcherCounters {
            hazard_checks: self.hazard_checks.saturating_sub(earlier.hazard_checks),
            hazard_rejects: self.hazard_rejects.saturating_sub(earlier.hazard_rejects),
            npn_hits: self.npn_hits.saturating_sub(earlier.npn_hits),
            npn_misses: self.npn_misses.saturating_sub(earlier.npn_misses),
        }
    }
}

/// The matcher: owns per-cell signatures, a signature index over the
/// library, and a (shareable) cache of hazard verdicts.
///
/// Matching is read-only: [`Matcher::find_matches`] takes `&self`, so one
/// matcher can serve many cone-covering threads concurrently. Counters are
/// relaxed atomics; hazard verdicts are memoized in an [`Arc`]-shared
/// [`HazardCache`].
#[derive(Debug)]
pub struct Matcher<'lib> {
    library: &'lib Library,
    entries: Vec<CellEntry>,
    /// Cells bucketed by [`SigKey`] (sorted per-input signature multiset);
    /// each bucket keeps library order, so iterating a bucket visits cells
    /// in the same order the old linear scan did.
    sig_index: HashMap<SigKey, Vec<usize>, FxBuildHasher>,
    policy: HazardPolicy,
    cache: Arc<HazardCache>,
    hazard_checks: AtomicUsize,
    hazard_rejects: AtomicUsize,
    /// P-class match memo (`None` when disabled via `ASYNCMAP_NPN_MEMO=0`).
    /// Memoizes the pre-hazard-filter match list per projected truth table
    /// and per canonical class, so structurally repeated clusters skip the
    /// permutation search entirely.
    memo: Option<MatchMemo>,
}

/// The match memo defaults to on; `ASYNCMAP_NPN_MEMO=0` disables it (an
/// escape hatch for A/B runs and for debugging canonicalization).
fn npn_memo_enabled() -> bool {
    std::env::var("ASYNCMAP_NPN_MEMO").map_or(true, |v| v.trim() != "0")
}

impl<'lib> Matcher<'lib> {
    /// Builds a matcher over `library` with its own private verdict cache.
    ///
    /// # Panics
    ///
    /// Panics if `policy` is [`HazardPolicy::SubsetCheck`] and the library
    /// has not been hazard-annotated.
    pub fn new(library: &'lib Library, policy: HazardPolicy) -> Self {
        Matcher::with_cache(library, policy, Arc::new(HazardCache::new()))
    }

    /// Builds a matcher over `library` sharing `cache` — verdicts computed
    /// by any matcher on the cache benefit all others (and later runs).
    ///
    /// # Panics
    ///
    /// Panics if `policy` is [`HazardPolicy::SubsetCheck`] and the library
    /// has not been hazard-annotated, or if `cache` was previously used
    /// with a different library.
    pub fn with_cache(
        library: &'lib Library,
        policy: HazardPolicy,
        cache: Arc<HazardCache>,
    ) -> Self {
        if policy == HazardPolicy::SubsetCheck {
            assert!(
                library.is_annotated(),
                "asynchronous matching requires an annotated library"
            );
        }
        cache.bind_library(library.name(), library.len());
        let entries: Vec<CellEntry> = library
            .cells()
            .iter()
            .enumerate()
            .map(|(index, cell)| {
                let truth = cell.truth_table();
                let ninputs = cell.num_inputs();
                CellEntry {
                    index,
                    ninputs,
                    onset: truth.count_ones(),
                    input_sigs: (0..ninputs)
                        .map(|v| input_signature(&truth, ninputs, v))
                        .collect(),
                    truth6: (ninputs <= 6).then(|| truth.words()[0]),
                    truth,
                    hazardous: if policy == HazardPolicy::SubsetCheck {
                        cell.is_hazardous()
                    } else {
                        false
                    },
                }
            })
            .collect();
        let mut sig_index: HashMap<SigKey, Vec<usize>, FxBuildHasher> = HashMap::default();
        for (e, entry) in entries.iter().enumerate() {
            sig_index
                .entry(sig_key(entry.ninputs, entry.onset, &entry.input_sigs))
                .or_default()
                .push(e);
        }
        Matcher {
            library,
            entries,
            sig_index,
            policy,
            cache,
            hazard_checks: AtomicUsize::new(0),
            hazard_rejects: AtomicUsize::new(0),
            memo: npn_memo_enabled().then(MatchMemo::new),
        }
    }

    /// The library this matcher works over.
    pub fn library(&self) -> &'lib Library {
        self.library
    }

    /// The shared verdict cache.
    pub fn cache(&self) -> &Arc<HazardCache> {
        &self.cache
    }

    /// Number of hazard-containment checks performed (for the overhead
    /// accounting of Table 4). Counted before any cache lookup, so the
    /// value is independent of cache warmth and thread count.
    ///
    /// Like every matcher counter, this **accumulates** over the matcher's
    /// lifetime. For per-run numbers on a reused matcher, snapshot
    /// [`Matcher::counters`] before the run and [`MatcherCounters::delta`]
    /// after it, or call [`Matcher::reset_counters`] between runs.
    pub fn hazard_checks(&self) -> usize {
        self.hazard_checks.load(Ordering::Relaxed)
    }

    /// Snapshot of every accumulating counter. The counters are monotone
    /// for the matcher's lifetime (until [`Matcher::reset_counters`]), so
    /// per-run accounting on a reused matcher is
    /// `after.delta(&before)`.
    pub fn counters(&self) -> MatcherCounters {
        MatcherCounters {
            hazard_checks: self.hazard_checks(),
            hazard_rejects: self.hazard_rejects(),
            npn_hits: self.npn_hits(),
            npn_misses: self.npn_misses(),
        }
    }

    /// Zeroes every accumulating counter. Accounting only: the match memo's
    /// contents and the shared verdict cache are untouched, so subsequent
    /// match lists are bit-identical to what they would have been.
    pub fn reset_counters(&self) {
        self.hazard_checks.store(0, Ordering::Relaxed);
        self.hazard_rejects.store(0, Ordering::Relaxed);
        if let Some(memo) = &self.memo {
            memo.reset_counters();
        }
    }

    /// Number of matches rejected by the hazard filter.
    pub fn hazard_rejects(&self) -> usize {
        self.hazard_rejects.load(Ordering::Relaxed)
    }

    /// Number of match-memo lookups served from the memo (raw-truth or
    /// canonical-class level). Zero when the memo is disabled.
    pub fn npn_hits(&self) -> usize {
        self.memo.as_ref().map_or(0, MatchMemo::hits)
    }

    /// Number of match-memo lookups that fell through to the full
    /// permutation search. Zero when the memo is disabled.
    pub fn npn_misses(&self) -> usize {
        self.memo.as_ref().map_or(0, MatchMemo::misses)
    }

    /// Test hook: force the memo on or off regardless of the environment.
    #[doc(hidden)]
    pub fn set_npn_memo_enabled(&mut self, enabled: bool) {
        self.memo = enabled.then(MatchMemo::new);
    }

    /// Whether matching can consult the hazard filter: the policy is
    /// [`HazardPolicy::SubsetCheck`] and some library cell is hazardous.
    /// Dominance pruning is disabled while this holds — a dominated cut's
    /// cluster expression differs from its dominator's, so their hazard
    /// verdicts (unlike their match lists) are not interchangeable.
    pub fn hazard_filtering_active(&self) -> bool {
        self.policy == HazardPolicy::SubsetCheck && self.entries.iter().any(|e| e.hazardous)
    }

    /// Finds all acceptable matches for `cluster` (paper
    /// `asyncmatchingroutine` when the policy is
    /// [`HazardPolicy::SubsetCheck`]).
    ///
    /// Returns matches over the cluster's *support*: leaves the cluster
    /// function does not depend on are not bound to any pin.
    ///
    /// Functions whose support fits in 6 variables (the common case under
    /// the default depth-5 cluster limit) run entirely on packed `u64`
    /// truth tables; wider functions use the word-blocked generic path.
    /// Both produce the exact match list of the original scalar
    /// implementation (see `find_matches_generic`).
    pub fn find_matches(&self, cluster: &Cluster) -> Vec<Match> {
        let mut t_match = profile::timer(MapPhase::Match);
        let nleaves = cluster.leaves.len();
        // Support + projected truth table, packed in one u64 when the
        // support has ≤ 6 variables.
        let support: Vec<usize>;
        let small: Option<u64>;
        let big: Option<Bits>;
        if nleaves <= 6 {
            let full = truth::truth6_of(&cluster.expr, nleaves);
            support = (0..nleaves)
                .filter(|&v| truth::depends6(full, nleaves, v))
                .collect();
            small = Some(truth::project6(full, &support));
            big = None;
        } else {
            let full = truth::truth_table_words(&cluster.expr, nleaves);
            support = (0..nleaves)
                .filter(|&v| depends_on_words(&full, v))
                .collect();
            if support.len() <= 6 {
                small = Some(project_to_u64(&full, &support));
                big = None;
            } else {
                small = None;
                big = Some(project(&full, nleaves, &support));
            }
        }
        if support.is_empty() {
            return Vec::new(); // constant cluster: nothing to match
        }
        let n = support.len();
        let (onset, sigs): (u32, Vec<u32>) = match (&small, &big) {
            (Some(t), _) => (
                t.count_ones(),
                (0..n).map(|v| truth::input_signature6(*t, n, v)).collect(),
            ),
            (None, Some(t)) => (
                t.count_ones(),
                (0..n).map(|v| input_signature_words(t, v)).collect(),
            ),
            (None, None) => unreachable!(),
        };

        // A cell can only match if its sorted signature multiset equals the
        // cluster's: permute_match demands a signature-preserving pin
        // bijection. Buckets keep library order, so the surviving match
        // list is identical to the old full scan's.
        let Some(bucket) = self.sig_index.get(&sig_key(n, onset, &sigs)) else {
            return Vec::new();
        };
        // Interned lazily: only clusters that reach a hazard check pay it.
        let mut cluster_id: Option<u32> = None;
        let mut out = Vec::new();
        for &e in bucket {
            let entry = &self.entries[e];
            let pin_to_local = match &small {
                // The bucket key fixes entry.ninputs == n ≤ 6, so the
                // packed cell table exists.
                Some(t) => permute_match6(
                    entry.truth6.expect("≤6-input cell has packed table"),
                    &entry.input_sigs,
                    *t,
                    &sigs,
                    n,
                ),
                None => permute_match(
                    &entry.truth,
                    &entry.input_sigs,
                    big.as_ref().expect("wide path has Bits table"),
                    &sigs,
                    n,
                ),
            };
            let Some(pin_to_local) = pin_to_local else {
                continue;
            };
            let cell_index = entry.index;
            // Map pins to the cluster's full leaf indices.
            let pin_to_leaf: Vec<usize> = pin_to_local.iter().map(|&l| support[l]).collect();
            if self.policy == HazardPolicy::SubsetCheck && entry.hazardous {
                self.hazard_checks.fetch_add(1, Ordering::Relaxed);
                t_match.pause();
                let ok = {
                    let _t_hazard = profile::timer(MapPhase::HazardCheck);
                    let id = *cluster_id.get_or_insert_with(|| self.cache.intern(&cluster.expr));
                    match self.cache.key(cell_index, &pin_to_leaf, id, nleaves) {
                        Some(key) => self.cache.verdict(key, || {
                            let candidate =
                                instantiate(self.library.cells()[cell_index].bff(), &pin_to_leaf);
                            hazards_subset(&candidate, &cluster.expr, nleaves)
                        }),
                        // Unpackable binding (>15 pins): check without caching.
                        None => {
                            let candidate =
                                instantiate(self.library.cells()[cell_index].bff(), &pin_to_leaf);
                            hazards_subset(&candidate, &cluster.expr, nleaves)
                        }
                    }
                };
                t_match.resume();
                if !ok {
                    self.hazard_rejects.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            out.push(Match {
                cell_index,
                pin_to_leaf,
            });
        }
        out
    }

    /// Cut-enumeration entry point: matches an arena-backed [`CutCluster`]
    /// without materializing its `Expr` unless a hazard check demands it.
    ///
    /// Produces the exact match list [`Matcher::find_matches`] would on the
    /// materialized cluster: the memo stores pre-hazard-filter candidate
    /// lists in library-bucket order, and the hazard filter below is the
    /// same code path (same counters, same verdict-cache keys).
    pub(crate) fn find_matches_cut(&self, cluster: &CutCluster, net: &Network) -> Vec<Match> {
        let mut out = Vec::new();
        self.for_each_match_cut(cluster, net, |cell_index, pin_to_leaf| {
            out.push(Match {
                cell_index,
                pin_to_leaf: pin_to_leaf.to_vec(),
            })
        });
        out
    }

    /// Visitor form of [`Matcher::find_matches_cut`]: calls `f(cell_index,
    /// pin_to_leaf)` for each acceptable match, in the same order the list
    /// form returns them. On the packed (≤6-leaf) path the pin binding
    /// lives in a stack buffer, so visiting allocates nothing — the
    /// covering DP scores candidates through this and materializes only
    /// each gate's winner.
    pub(crate) fn for_each_match_cut(
        &self,
        cluster: &CutCluster,
        net: &Network,
        mut f: impl FnMut(usize, &[usize]),
    ) {
        let Some(full) = cluster.truth6 else {
            // Wide cluster (7–8 leaves): match on the 4-word table the
            // enumeration walk produced, no `Expr` needed. Beyond 8 leaves
            // fall back to the generic path on a materialized view.
            let wide = if let Some(words) = cluster.twords {
                self.find_matches_wide(cluster, words, net)
            } else {
                self.find_matches(&cluster.to_cluster(net))
            };
            for m in wide {
                f(m.cell_index, &m.pin_to_leaf);
            }
            return;
        };
        let mut t_match = profile::timer(MapPhase::Match);
        let nleaves = cluster.leaves.len();
        let mut support = [0usize; 6];
        let mut n = 0;
        for v in 0..nleaves {
            if truth::depends6(full, nleaves, v) {
                support[n] = v;
                n += 1;
            }
        }
        if n == 0 {
            return; // constant cluster: nothing to match
        }
        let support = &support[..n];
        let t = truth::project6(full, support);
        let mut sigs = [0u32; 6];
        for (v, s) in sigs.iter_mut().enumerate().take(n) {
            *s = truth::input_signature6(t, n, v);
        }
        let sigs = &sigs[..n];

        // Pre-hazard-filter candidates: raw-truth memo level first, then
        // the canonical-class level (replaying the permutation search only
        // on known-matching cells), then the full signature-bucket scan.
        let bindings: Arc<Vec<MemoBinding>> = match &self.memo {
            Some(memo) => {
                if let Some(list) = memo.raw_get(n, t) {
                    memo.note_hit();
                    list
                } else {
                    let c = truth::canon6(t, n);
                    let list = if let Some(cells) = memo.class_get(n, c.canon, c.phase) {
                        memo.note_hit();
                        let mut out = Vec::with_capacity(cells.len());
                        for &e in cells.iter() {
                            let entry = &self.entries[e as usize];
                            let pin_to_local = permute_match6(
                                entry.truth6.expect("≤6-input cell has packed table"),
                                &entry.input_sigs,
                                t,
                                sigs,
                                n,
                            )
                            .expect("P-class member must match every class instance");
                            out.push((e, pack_binding(&pin_to_local)));
                        }
                        Arc::new(out)
                    } else {
                        memo.note_miss();
                        let (list, cells) = self.scan_bucket6(t, sigs, n);
                        memo.class_put(n, c.canon, c.phase, Arc::new(cells));
                        Arc::new(list)
                    };
                    memo.raw_put(n, t, Arc::clone(&list));
                    list
                }
            }
            None => Arc::new(self.scan_bucket6(t, sigs, n).0),
        };

        // Hazard filter — identical to `find_matches`: same counters, same
        // verdict-cache keys (the lazily built Expr is the same canonical
        // walk the legacy enumerator produced eagerly).
        let mut cluster_id: Option<u32> = None;
        for &(e, packed) in bindings.iter() {
            let entry = &self.entries[e as usize];
            let cell_index = entry.index;
            let mut pins = [0usize; 6];
            for (p, pin) in pins.iter_mut().enumerate().take(n) {
                *pin = support[packed[p] as usize];
            }
            let pin_to_leaf = &pins[..n];
            if self.policy == HazardPolicy::SubsetCheck && entry.hazardous {
                self.hazard_checks.fetch_add(1, Ordering::Relaxed);
                t_match.pause();
                let ok = {
                    let _t_hazard = profile::timer(MapPhase::HazardCheck);
                    let expr = cluster.expr(net);
                    let id = *cluster_id.get_or_insert_with(|| self.cache.intern(expr));
                    match self.cache.key(cell_index, pin_to_leaf, id, nleaves) {
                        Some(key) => self.cache.verdict(key, || {
                            let candidate =
                                instantiate(self.library.cells()[cell_index].bff(), pin_to_leaf);
                            hazards_subset(&candidate, expr, nleaves)
                        }),
                        // Unpackable binding (>15 pins): check without caching.
                        None => {
                            let candidate =
                                instantiate(self.library.cells()[cell_index].bff(), pin_to_leaf);
                            hazards_subset(&candidate, expr, nleaves)
                        }
                    }
                };
                t_match.resume();
                if !ok {
                    self.hazard_rejects.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            f(cell_index, pin_to_leaf);
        }
    }

    /// Full signature-bucket permutation scan on a packed table. Returns
    /// the surviving `(entry, binding)` list plus the bare entry list (the
    /// class-level memo payload), both in library-bucket order.
    fn scan_bucket6(&self, t: u64, sigs: &[u32], n: usize) -> (Vec<MemoBinding>, Vec<u32>) {
        let Some(bucket) = self.sig_index.get(&sig_key(n, t.count_ones(), sigs)) else {
            return (Vec::new(), Vec::new());
        };
        let mut list = Vec::new();
        let mut cells = Vec::new();
        for &e in bucket {
            let entry = &self.entries[e];
            let Some(pin_to_local) = permute_match6(
                entry.truth6.expect("≤6-input cell has packed table"),
                &entry.input_sigs,
                t,
                sigs,
                n,
            ) else {
                continue;
            };
            list.push((e as u32, pack_binding(&pin_to_local)));
            cells.push(e as u32);
        }
        (list, cells)
    }

    /// Wide-cluster (7–8 leaf) matching on the enumeration walk's 4-word
    /// table: the raw wide memo level first, then a signature-bucket scan
    /// on the word-blocked table. The cluster `Expr` is built lazily and
    /// only if a hazard check fires. Produces the exact match list
    /// [`Matcher::find_matches`] yields on the materialized cluster.
    fn find_matches_wide(
        &self,
        cluster: &CutCluster,
        words: [u64; 4],
        net: &Network,
    ) -> Vec<Match> {
        let mut t_match = profile::timer(MapPhase::Match);
        let nleaves = cluster.leaves.len();
        let bindings: Arc<Vec<WideBinding>> = match &self.memo {
            Some(memo) => {
                if let Some(list) = memo.wide_get(nleaves, words) {
                    memo.note_hit();
                    list
                } else {
                    memo.note_miss();
                    let list = Arc::new(self.scan_wide(words, nleaves));
                    memo.wide_put(nleaves, words, Arc::clone(&list));
                    list
                }
            }
            None => Arc::new(self.scan_wide(words, nleaves)),
        };
        let mut cluster_id: Option<u32> = None;
        let mut out = Vec::with_capacity(bindings.len());
        for &(e, packed) in bindings.iter() {
            let entry = &self.entries[e as usize];
            let cell_index = entry.index;
            let pin_to_leaf: Vec<usize> = packed[..entry.ninputs]
                .iter()
                .map(|&l| l as usize)
                .collect();
            if self.policy == HazardPolicy::SubsetCheck && entry.hazardous {
                self.hazard_checks.fetch_add(1, Ordering::Relaxed);
                t_match.pause();
                let ok = {
                    let _t_hazard = profile::timer(MapPhase::HazardCheck);
                    let expr = cluster.expr(net);
                    let id = *cluster_id.get_or_insert_with(|| self.cache.intern(expr));
                    match self.cache.key(cell_index, &pin_to_leaf, id, nleaves) {
                        Some(key) => self.cache.verdict(key, || {
                            let candidate =
                                instantiate(self.library.cells()[cell_index].bff(), &pin_to_leaf);
                            hazards_subset(&candidate, expr, nleaves)
                        }),
                        // Unpackable binding (>15 pins): check without caching.
                        None => {
                            let candidate =
                                instantiate(self.library.cells()[cell_index].bff(), &pin_to_leaf);
                            hazards_subset(&candidate, expr, nleaves)
                        }
                    }
                };
                t_match.resume();
                if !ok {
                    self.hazard_rejects.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            out.push(Match {
                cell_index,
                pin_to_leaf,
            });
        }
        out
    }

    /// Full signature-bucket scan for a wide cluster: support reduction,
    /// projection (back into one word when the support shrinks to ≤ 6) and
    /// the permutation search, all on the walk's packed words — the same
    /// pipeline [`Matcher::find_matches`] runs on an `Expr`-derived table.
    /// Returns pin → leaf-index bindings in library-bucket order.
    fn scan_wide(&self, words: [u64; 4], nleaves: usize) -> Vec<WideBinding> {
        let full = Bits::from_words_fn(1 << nleaves, |i| words[i]);
        let support: Vec<usize> = (0..nleaves)
            .filter(|&v| depends_on_words(&full, v))
            .collect();
        if support.is_empty() {
            return Vec::new(); // constant cluster: nothing to match
        }
        let n = support.len();
        let small: Option<u64>;
        let big: Option<Bits>;
        if n <= 6 {
            small = Some(project_to_u64(&full, &support));
            big = None;
        } else {
            small = None;
            big = Some(project(&full, nleaves, &support));
        }
        let (onset, sigs): (u32, Vec<u32>) = match (&small, &big) {
            (Some(t), _) => (
                t.count_ones(),
                (0..n).map(|v| truth::input_signature6(*t, n, v)).collect(),
            ),
            (None, Some(t)) => (
                t.count_ones(),
                (0..n).map(|v| input_signature_words(t, v)).collect(),
            ),
            (None, None) => unreachable!(),
        };
        let Some(bucket) = self.sig_index.get(&sig_key(n, onset, &sigs)) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &e in bucket {
            let entry = &self.entries[e];
            let pin_to_local = match &small {
                Some(t) => permute_match6(
                    entry.truth6.expect("≤6-input cell has packed table"),
                    &entry.input_sigs,
                    *t,
                    &sigs,
                    n,
                ),
                None => permute_match(
                    &entry.truth,
                    &entry.input_sigs,
                    big.as_ref().expect("wide path has Bits table"),
                    &sigs,
                    n,
                ),
            };
            let Some(pin_to_local) = pin_to_local else {
                continue;
            };
            let mut packed = [0u8; 8];
            for (pin, &l) in pin_to_local.iter().enumerate() {
                packed[pin] = support[l] as u8;
            }
            out.push((e as u32, packed));
        }
        out
    }

    /// The original scalar matching path, kept verbatim as the reference
    /// implementation for the fast-path equivalence proptests. Performs
    /// the same hazard filtering (and counter updates) as
    /// [`Matcher::find_matches`].
    #[doc(hidden)]
    pub fn find_matches_generic(&self, cluster: &Cluster) -> Vec<Match> {
        let nleaves = cluster.leaves.len();
        let full_truth = truth_table_of_generic(&cluster.expr, nleaves);
        let support: Vec<usize> = (0..nleaves)
            .filter(|&v| depends_on(&full_truth, nleaves, v))
            .collect();
        if support.is_empty() {
            return Vec::new(); // constant cluster: nothing to match
        }
        let truth = project(&full_truth, nleaves, &support);
        let n = support.len();
        let onset = truth.count_ones();
        let sigs: Vec<u32> = (0..n).map(|v| input_signature(&truth, n, v)).collect();
        let Some(bucket) = self.sig_index.get(&sig_key(n, onset, &sigs)) else {
            return Vec::new();
        };
        let mut cluster_id: Option<u32> = None;
        let mut out = Vec::new();
        for &e in bucket {
            let entry = &self.entries[e];
            let Some(pin_to_local) =
                permute_match(&entry.truth, &entry.input_sigs, &truth, &sigs, n)
            else {
                continue;
            };
            let cell_index = entry.index;
            let pin_to_leaf: Vec<usize> = pin_to_local.iter().map(|&l| support[l]).collect();
            if self.policy == HazardPolicy::SubsetCheck && entry.hazardous {
                self.hazard_checks.fetch_add(1, Ordering::Relaxed);
                let id = *cluster_id.get_or_insert_with(|| self.cache.intern(&cluster.expr));
                let ok = match self.cache.key(cell_index, &pin_to_leaf, id, nleaves) {
                    Some(key) => self.cache.verdict(key, || {
                        let candidate =
                            instantiate(self.library.cells()[cell_index].bff(), &pin_to_leaf);
                        hazards_subset(&candidate, &cluster.expr, nleaves)
                    }),
                    None => {
                        let candidate =
                            instantiate(self.library.cells()[cell_index].bff(), &pin_to_leaf);
                        hazards_subset(&candidate, &cluster.expr, nleaves)
                    }
                };
                if !ok {
                    self.hazard_rejects.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            out.push(Match {
                cell_index,
                pin_to_leaf,
            });
        }
        out
    }
}

/// Builds the signature-index key for a function with `n` inputs, `onset`
/// onset minterms and per-input signatures `sigs` (sorted copy, so the key
/// is permutation-invariant).
fn sig_key(n: usize, onset: u32, sigs: &[u32]) -> SigKey {
    let mut sorted = sigs.to_vec();
    sorted.sort_unstable();
    (n, onset, sorted)
}

/// Packs a ≤6-pin binding into the fixed-size memo representation.
fn pack_binding(pin_to_local: &[usize]) -> [u8; 6] {
    let mut packed = [0u8; 6];
    for (p, &l) in pin_to_local.iter().enumerate() {
        packed[p] = l as u8;
    }
    packed
}

/// Rewrites a cell BFF into the cluster's variable space using the pin
/// binding.
pub fn instantiate(bff: &Expr, pin_to_leaf: &[usize]) -> Expr {
    bff.substitute(&|v: VarId| (VarId(pin_to_leaf[v.index()]), Phase::Pos))
}

/// Truth table of `expr` over `n` local variables (word-parallel blocked
/// evaluation, see [`crate::truth::truth_table_words`]).
pub fn truth_table_of(expr: &Expr, n: usize) -> Bits {
    truth::truth_table_words(expr, n)
}

/// Scalar one-assignment-at-a-time truth table: the reference
/// implementation the word-parallel kernels are tested against.
#[doc(hidden)]
pub fn truth_table_of_generic(expr: &Expr, n: usize) -> Bits {
    let size = 1usize << n;
    let mut out = Bits::new(size);
    let mut assignment = Bits::new(n);
    for m in 0..size {
        for v in 0..n {
            assignment.set(v, (m >> v) & 1 == 1);
        }
        if expr.eval(&assignment) {
            out.set(m, true);
        }
    }
    out
}

/// Scalar dependence test (reference implementation).
#[doc(hidden)]
pub fn depends_on(truth: &Bits, n: usize, v: usize) -> bool {
    let size = 1usize << n;
    let bit = 1usize << v;
    (0..size).any(|m| m & bit == 0 && truth.get(m) != truth.get(m | bit))
}

/// Word-parallel dependence test for tables wider than one word (every
/// storage word is full because the table has ≥ 128 entries).
#[doc(hidden)]
pub fn depends_on_words(truth: &Bits, v: usize) -> bool {
    let words = truth.words();
    if v < 6 {
        let shift = 1usize << v;
        words
            .iter()
            .any(|&w| ((w >> shift) ^ w) & !truth::MASKS[v] != 0)
    } else {
        let stride = 1usize << (v - 6);
        (0..words.len()).any(|i| i & stride == 0 && words[i] != words[i | stride])
    }
}

/// Projects a wide truth table (over > 6 variables) onto a support subset
/// of ≤ 6 variables, packing the result.
fn project_to_u64(truth: &Bits, support: &[usize]) -> u64 {
    let k = support.len();
    debug_assert!(k <= 6);
    let mut out = 0u64;
    for m in 0..(1usize << k) {
        let mut full = 0usize;
        for (i, &v) in support.iter().enumerate() {
            full |= ((m >> i) & 1) << v;
        }
        out |= u64::from(truth.get(full)) << m;
    }
    out
}

/// Projects a truth table onto a support subset (the function must not
/// depend on dropped variables).
fn project(truth: &Bits, n: usize, support: &[usize]) -> Bits {
    let k = support.len();
    let mut out = Bits::new(1 << k);
    for m in 0..(1usize << k) {
        let mut full = 0usize;
        for (i, &v) in support.iter().enumerate() {
            if (m >> i) & 1 == 1 {
                full |= 1 << v;
            }
        }
        let _ = n;
        if truth.get(full) {
            out.set(m, true);
        }
    }
    out
}

/// Signature of input `v`: the number of onset minterms with `v = 1`
/// packed with the number with `v = 0` (permutation-invariant). Scalar
/// reference implementation.
#[doc(hidden)]
pub fn input_signature(truth: &Bits, n: usize, v: usize) -> u32 {
    let size = 1usize << n;
    let bit = 1usize << v;
    let mut with = 0u32;
    let mut without = 0u32;
    for m in 0..size {
        if truth.get(m) {
            if m & bit != 0 {
                with += 1;
            } else {
                without += 1;
            }
        }
    }
    (with << 16) | without
}

/// Word-parallel [`input_signature`] for tables wider than one word.
#[doc(hidden)]
pub fn input_signature_words(truth: &Bits, v: usize) -> u32 {
    let words = truth.words();
    let mut with = 0u32;
    let mut without = 0u32;
    if v < 6 {
        for &w in words {
            with += (w & truth::MASKS[v]).count_ones();
            without += (w & !truth::MASKS[v]).count_ones();
        }
    } else {
        let stride = 1usize << (v - 6);
        for (i, &w) in words.iter().enumerate() {
            if i & stride != 0 {
                with += w.count_ones();
            } else {
                without += w.count_ones();
            }
        }
    }
    (with << 16) | without
}

/// Backtracking pin-permutation search: find `pin_to_local` such that
/// `cell(x_{σ(0)}, …) = cluster(x_0, …)`.
fn permute_match(
    cell_truth: &Bits,
    cell_sigs: &[u32],
    cluster_truth: &Bits,
    cluster_sigs: &[u32],
    n: usize,
) -> Option<Vec<usize>> {
    let mut assignment: Vec<Option<usize>> = vec![None; n]; // pin -> local var
    let mut used = vec![false; n];
    if backtrack(
        cell_truth,
        cell_sigs,
        cluster_truth,
        cluster_sigs,
        n,
        0,
        &mut assignment,
        &mut used,
    ) {
        Some(
            assignment
                .into_iter()
                .map(|a| a.expect("complete"))
                .collect(),
        )
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    cell_truth: &Bits,
    cell_sigs: &[u32],
    cluster_truth: &Bits,
    cluster_sigs: &[u32],
    n: usize,
    pin: usize,
    assignment: &mut Vec<Option<usize>>,
    used: &mut Vec<bool>,
) -> bool {
    if pin == n {
        return verify_permutation(cell_truth, cluster_truth, assignment, n);
    }
    for local in 0..n {
        if used[local] || cell_sigs[pin] != cluster_sigs[local] {
            continue;
        }
        assignment[pin] = Some(local);
        used[local] = true;
        if backtrack(
            cell_truth,
            cell_sigs,
            cluster_truth,
            cluster_sigs,
            n,
            pin + 1,
            assignment,
            used,
        ) {
            return true;
        }
        assignment[pin] = None;
        used[local] = false;
    }
    false
}

/// [`permute_match`] on packed `u64` truth tables (`n ≤ 6`). Identical
/// search order (pins ascending, locals ascending), so the first
/// permutation found — and therefore the returned binding — matches the
/// generic path exactly.
fn permute_match6(
    cell_truth: u64,
    cell_sigs: &[u32],
    cluster_truth: u64,
    cluster_sigs: &[u32],
    n: usize,
) -> Option<Vec<usize>> {
    let mut assignment = [usize::MAX; 6];
    let mut used = [false; 6];
    if backtrack6(
        cell_truth,
        cell_sigs,
        cluster_truth,
        cluster_sigs,
        n,
        0,
        &mut assignment,
        &mut used,
    ) {
        Some(assignment[..n].to_vec())
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn backtrack6(
    cell_truth: u64,
    cell_sigs: &[u32],
    cluster_truth: u64,
    cluster_sigs: &[u32],
    n: usize,
    pin: usize,
    assignment: &mut [usize; 6],
    used: &mut [bool; 6],
) -> bool {
    if pin == n {
        return verify_permutation6(cell_truth, cluster_truth, &assignment[..n], n);
    }
    for local in 0..n {
        if used[local] || cell_sigs[pin] != cluster_sigs[local] {
            continue;
        }
        assignment[pin] = local;
        used[local] = true;
        if backtrack6(
            cell_truth,
            cell_sigs,
            cluster_truth,
            cluster_sigs,
            n,
            pin + 1,
            assignment,
            used,
        ) {
            return true;
        }
        used[local] = false;
    }
    assignment[pin] = usize::MAX;
    false
}

/// Complete-assignment check: `cell(x_{σ(0)}, …) = cluster(x_0, …)`.
///
/// Reindexing the cell table by the assignment (`apply_perm6`, a
/// delta-swap network) gives exactly the table whose minterm `m` is
/// `cell[cell_m]` of the old per-minterm loop, so one word compare
/// replaces the `2^n`-iteration bit gather.
fn verify_permutation6(
    cell_truth: u64,
    cluster_truth: u64,
    assignment: &[usize],
    n: usize,
) -> bool {
    let mask = truth::full_mask(n);
    truth::apply_perm6(cell_truth & mask, assignment, n) == cluster_truth & mask
}

fn verify_permutation(
    cell_truth: &Bits,
    cluster_truth: &Bits,
    assignment: &[Option<usize>],
    n: usize,
) -> bool {
    if (7..=8).contains(&n) {
        // Wide-cluster fast path: both tables are ≤ 4 words; permute the
        // cell table with the 4-lane delta-swap network and compare
        // whole words.
        let mut perm = [0usize; 8];
        for (p, local) in assignment.iter().enumerate() {
            perm[p] = local.expect("complete assignment");
        }
        let mut cw = [0u64; 4];
        cw[..cell_truth.words().len()].copy_from_slice(cell_truth.words());
        let permuted = truth::apply_perm_wide(cw, &perm, n);
        return permuted[..cluster_truth.words().len()] == *cluster_truth.words();
    }
    let size = 1usize << n;
    for m in 0..size {
        // Build the cell-input index corresponding to cluster minterm m:
        // pin p reads local variable assignment[p].
        let mut cell_m = 0usize;
        for (p, local) in assignment.iter().enumerate() {
            let local = local.expect("complete assignment");
            if (m >> local) & 1 == 1 {
                cell_m |= 1 << p;
            }
        }
        if cell_truth.get(cell_m) != cluster_truth.get(m) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{enumerate_clusters, ClusterLimits};
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_library::builtin;
    use asyncmap_network::{async_tech_decomp, partition, EquationSet};

    fn root_clusters(text: &str, names: &[&str]) -> (asyncmap_network::Network, Vec<Cluster>) {
        let vars = VarTable::from_names(names.iter().copied());
        let f = Cover::parse(text, &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let clusters = enumerate_clusters(&net, &cones[0], &ClusterLimits::default());
        let list = clusters[&cones[0].root].clone();
        (net, list)
    }

    #[test]
    fn nand_cluster_matches_nand_cell() {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        // f = (ab)' decomposes to INV(AND(a,b)); the 2-gate root cluster
        // must match NAND2.
        let (_, clusters) = root_clusters("a' + b'", &["a", "b"]);
        let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        let mut matched_nand = false;
        for c in &clusters {
            for m in matcher.find_matches(c) {
                if lib.cells()[m.cell_index].name().starts_with("NAND2") {
                    matched_nand = true;
                }
            }
        }
        assert!(matched_nand);
    }

    #[test]
    fn permutation_binding_is_correct() {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        // f = a + b'c → OAI-ish structures; check every reported match
        // really computes the cluster function under its binding.
        let (_, clusters) = root_clusters("a + b'c", &["a", "b", "c"]);
        let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        let mut total = 0;
        for c in &clusters {
            for m in matcher.find_matches(c) {
                total += 1;
                let cell = &lib.cells()[m.cell_index];
                let inst = instantiate(cell.bff(), &m.pin_to_leaf);
                let n = c.leaves.len();
                assert_eq!(
                    truth_table_of(&inst, n),
                    truth_table_of(&c.expr, n),
                    "bad binding for {}",
                    cell.name()
                );
            }
        }
        assert!(total > 0);
    }

    #[test]
    fn figure3_mux_rejected_for_hazard_free_cluster() {
        // The cluster computing ab + a'c *with the redundant consensus
        // cube bc* (hazard-free structure) must NOT be matched by the
        // hazardous two-cube MUX2 cell in async mode, but IS matched in
        // sync mode.
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let (_, clusters) = root_clusters("ab + a'c + bc", &["a", "b", "c"]);
        let full = clusters.iter().max_by_key(|c| c.num_gates).unwrap();

        let sync = Matcher::new(&lib, HazardPolicy::Ignore);
        let sync_names: Vec<&str> = sync
            .find_matches(full)
            .into_iter()
            .map(|m| lib.cells()[m.cell_index].name())
            .collect();
        assert!(sync_names.contains(&"MUX2"), "sync: {sync_names:?}");

        let async_m = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        let async_names: Vec<&str> = async_m
            .find_matches(full)
            .into_iter()
            .map(|m| lib.cells()[m.cell_index].name())
            .collect();
        assert!(!async_names.contains(&"MUX2"), "async: {async_names:?}");
        assert!(async_m.hazard_rejects() > 0);
    }

    #[test]
    fn hazardous_cell_accepted_when_cluster_shares_hazards() {
        // The two-cube mux cluster (sa + s'b without consensus) has
        // exactly the MUX2 cell's hazards: the match must be accepted.
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let (_, clusters) = root_clusters("sa + s'b", &["s", "a", "b"]);
        let full = clusters.iter().max_by_key(|c| c.num_gates).unwrap();
        let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        let names: Vec<&str> = matcher
            .find_matches(full)
            .into_iter()
            .map(|m| lib.cells()[m.cell_index].name())
            .collect();
        assert!(names.contains(&"MUX2"), "{names:?}");
    }

    #[test]
    fn constant_cluster_matches_nothing() {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        let mut vars = VarTable::new();
        let expr = Expr::parse("a + a'", &mut vars).unwrap();
        let cluster = Cluster {
            root: asyncmap_network::SignalId(0),
            leaves: vec![asyncmap_network::SignalId(0)],
            expr,
            num_gates: 1,
        };
        assert!(matcher.find_matches(&cluster).is_empty());
    }

    #[test]
    #[should_panic(expected = "requires an annotated library")]
    fn async_matcher_requires_annotation() {
        let lib = builtin::cmos3();
        let _ = Matcher::new(&lib, HazardPolicy::SubsetCheck);
    }
}
