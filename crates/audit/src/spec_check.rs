//! Independent static checker for burst-mode specifications.
//!
//! Re-implements the well-formedness obligations that
//! [`asyncmap_burst::BurstSpec::validate`] enforces — unique entry point
//! (consistent entry vectors and a reachable machine), the maximal set
//! property, and distinguishability — but *collects every finding* with a
//! machine-readable `spec.*` code instead of stopping at the first, so an
//! audit over a spec reports the complete damage.

use std::collections::VecDeque;

use asyncmap_burst::BurstSpec;

use crate::report::{AuditReport, Severity};

/// Statically checks `spec` against the burst-mode well-formedness
/// properties, reporting every violation.
pub fn check_spec(spec: &BurstSpec) -> AuditReport {
    let mut report = AuditReport::default();
    report.counters.spec_states = spec.num_states;
    report.counters.spec_edges = spec.edges.len();
    let ni = spec.num_inputs();
    let no = spec.num_outputs();

    if spec.initial_inputs.len() != ni || spec.initial_outputs.len() != no {
        report.push(
            Severity::Error,
            "spec.width-mismatch",
            format!("{}:initial", spec.name),
            format!(
                "initial vectors are {}/{} bits wide, spec has {ni} input(s) and {no} output(s)",
                spec.initial_inputs.len(),
                spec.initial_outputs.len()
            ),
        );
        return report;
    }

    let mut edges_ok = true;
    for (i, e) in spec.edges.iter().enumerate() {
        let path = format!("{}:edge{}", spec.name, i);
        if e.from.0 >= spec.num_states || e.to.0 >= spec.num_states {
            report.push(
                Severity::Error,
                "spec.dangling-state",
                path,
                format!("references state outside 0..{}", spec.num_states),
            );
            edges_ok = false;
            continue;
        }
        if e.input_burst.len() != ni || e.output_burst.len() != no {
            report.push(
                Severity::Error,
                "spec.width-mismatch",
                path,
                "burst width does not match the spec's input/output count".to_owned(),
            );
            edges_ok = false;
            continue;
        }
        if e.input_burst.is_zero() {
            report.push(
                Severity::Error,
                "spec.empty-input-burst",
                path.clone(),
                "fundamental-mode operation requires at least one input change".to_owned(),
            );
        }
        if e.from == e.to {
            report.push(
                Severity::Error,
                "spec.self-loop",
                path,
                "a burst must move the machine to a different state".to_owned(),
            );
        }
    }

    // Maximal set property and distinguishability, per source state.
    for s in 0..spec.num_states {
        let bursts: Vec<(usize, &asyncmap_cube::Bits)> = spec
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from.0 == s && e.input_burst.len() == ni)
            .map(|(i, e)| (i, &e.input_burst))
            .collect();
        for (x, &(i, a)) in bursts.iter().enumerate() {
            for &(j, b) in &bursts[x + 1..] {
                if a == b {
                    report.push(
                        Severity::Error,
                        "spec.indistinguishable",
                        format!("{}:state{}", spec.name, s),
                        format!("edges {i} and {j} leave on identical input bursts"),
                    );
                } else if a.is_subset(b) || b.is_subset(a) {
                    report.push(
                        Severity::Error,
                        "spec.maximal-set",
                        format!("{}:state{}", spec.name, s),
                        format!("input bursts of edges {i} and {j} are ordered by inclusion"),
                    );
                }
            }
        }
    }

    if !edges_ok {
        // Entry propagation over malformed edges would only cascade noise.
        return report;
    }

    // Unique entry point: propagating the bursts from the initial state
    // must give every state exactly one entry vector (first value kept on
    // conflict so the scan can continue), and reach every state.
    let mut entry: Vec<Option<(asyncmap_cube::Bits, asyncmap_cube::Bits)>> =
        vec![None; spec.num_states];
    entry[0] = Some((spec.initial_inputs.clone(), spec.initial_outputs.clone()));
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    while let Some(s) = queue.pop_front() {
        let (vi, vo) = entry[s].clone().expect("queued states have entry vectors");
        for (i, e) in spec.edges.iter().enumerate() {
            if e.from.0 != s {
                continue;
            }
            let ni_vec = vi.xor(&e.input_burst);
            let no_vec = vo.xor(&e.output_burst);
            match &entry[e.to.0] {
                None => {
                    entry[e.to.0] = Some((ni_vec, no_vec));
                    queue.push_back(e.to.0);
                }
                Some((ei, eo)) => {
                    if *ei != ni_vec || *eo != no_vec {
                        report.push(
                            Severity::Error,
                            "spec.entry-inconsistent",
                            format!("{}:state{}", spec.name, e.to.0),
                            format!("edge {i} enters with a different vector than a prior path"),
                        );
                    }
                }
            }
        }
    }
    for (s, e) in entry.iter().enumerate() {
        if e.is_none() {
            report.push(
                Severity::Error,
                "spec.unreachable",
                format!("{}:state{}", spec.name, s),
                "state cannot be reached from the initial state".to_owned(),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_burst::{figure1_example, parse_bms};

    #[test]
    fn figure1_is_clean() {
        let report = check_spec(&figure1_example());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.counters.spec_states, 2);
    }

    #[test]
    fn collects_multiple_findings() {
        // Two independent defects: a self-loop and an identical-burst
        // pair. validate() stops at the first; the audit reports both.
        let mut spec = figure1_example();
        let mut loop_edge = spec.edges[0].clone();
        loop_edge.to = loop_edge.from;
        let dup_edge = spec.edges[0].clone();
        spec.edges.push(loop_edge);
        spec.edges.push(dup_edge);
        let report = check_spec(&spec);
        assert!(report.findings.iter().any(|f| f.code == "spec.self-loop"));
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "spec.indistinguishable"));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn agrees_with_validate_on_fixtures() {
        let maximal = include_str!("../../burst/tests/fixtures/maximal_set.bms");
        // parse_bms validates on load now, so reconstruct via the raw
        // parser path: strip to a hand-built spec instead. Simplest
        // cross-check: the loader must reject it, and so would the audit
        // if it ever saw the spec.
        assert!(parse_bms(maximal).is_err());
    }

    #[test]
    fn unreachable_state_is_flagged() {
        let mut spec = figure1_example();
        spec.num_states += 1;
        let report = check_spec(&spec);
        assert!(report.findings.iter().any(|f| f.code == "spec.unreachable"));
    }
}
