//! Hazard-free two-level synthesis for the specified transitions of a
//! burst-mode function — the role the paper's input flow assigns to the
//! hazard-free minimizer of Nowick & Dill (paper ref. [12]).
//!
//! The implementation follows the structure of that work, simplified to
//! the fixed interior-value assignment made by [`crate::flow`]:
//!
//! * **legality** — an implicant may intersect the transition space of a
//!   dynamic transition only if it contains the transition's 1-valued
//!   endpoint (so every gate involved switches monotonically); for a
//!   specified static-0 transition no implicant may touch the space at all
//!   (automatic, since the space is OFF);
//! * **required cubes** — each static-1 transition space must lie inside a
//!   *single* chosen cube (Eichelberger's condition), and the ON-set must
//!   be fully covered;
//! * candidates are legality-constrained prime expansions of the specified
//!   ON cubes.
//!
//! Every synthesized cover is re-verified against all specified transitions
//! with the exact waveform oracle before being returned; a violation is a
//! hard error, not a silent degradation.

use crate::flow::{SpecFunction, SpecTransition, TransKind};
use asyncmap_bff::Expr;
use asyncmap_cube::{Cover, Cube, VarId};
use asyncmap_hazard::wave_eval;
use std::error::Error;
use std::fmt;

/// Failure to synthesize a hazard-free cover.
#[derive(Debug, Clone)]
pub struct SynthesisError {
    /// Function name.
    pub function: String,
    /// Description of the failed requirement.
    pub message: String,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hazard-free synthesis failed for {}: {}",
            self.function, self.message
        )
    }
}

impl Error for SynthesisError {}

/// Synthesizes a two-level cover of `spec` that is hazard-free for every
/// specified transition (unspecified points are implemented as 0).
///
/// # Errors
///
/// Returns [`SynthesisError`] when the requirements are unsatisfiable for
/// this specification (e.g. conflicting dynamic transitions) — the
/// waveform verification runs on every result, so a returned cover is
/// certified.
pub fn hazard_free_cover(spec: &SpecFunction) -> Result<Cover, SynthesisError> {
    let on = spec.on.without_contained_cubes();
    if on.is_empty() {
        return Err(SynthesisError {
            function: spec.name.clone(),
            message: "function has an empty ON-set".into(),
        });
    }
    // Legality-constrained prime expansion of each structural ON cube.
    let mut chosen = Cover::zero(spec.nvars);
    for cube in on.cubes() {
        let expanded = legal_expand(cube, &on, &spec.transitions);
        if !chosen.cubes().contains(&expanded) {
            chosen.push(expanded);
        }
    }
    let chosen = chosen.without_contained_cubes();

    verify(&chosen, spec)?;
    Ok(chosen)
}

/// Greedily widens `cube` (dropping literals in ascending variable order)
/// while it remains an implicant of `on` and legal for every dynamic
/// transition.
fn legal_expand(cube: &Cube, on: &Cover, transitions: &[SpecTransition]) -> Cube {
    debug_assert!(is_legal(cube, transitions), "structural cube illegal");
    let mut out = cube.clone();
    for v in 0..on.nvars() {
        let v = VarId(v);
        if out.literal(v).is_none() {
            continue;
        }
        let wider = out.without_var(v);
        if on.covers_cube(&wider) && is_legal(&wider, transitions) {
            out = wider;
        }
    }
    out
}

/// The legality test: `cube` may intersect a dynamic transition space only
/// if it contains the 1-valued endpoint.
fn is_legal(cube: &Cube, transitions: &[SpecTransition]) -> bool {
    transitions.iter().all(|t| {
        let one_end = match t.kind {
            TransKind::Rise => &t.end,
            TransKind::Fall => &t.start,
            TransKind::Static1 | TransKind::Static0 => return true,
        };
        cube.intersect(&t.space).is_none() || cube.contains(&Cube::minterm(one_end))
    })
}

/// Certifies a cover against every specified transition with the waveform
/// oracle.
fn verify(cover: &Cover, spec: &SpecFunction) -> Result<(), SynthesisError> {
    let expr = Expr::from_cover(cover);
    for (i, t) in spec.transitions.iter().enumerate() {
        // Endpoint values must match the specification.
        let (want_start, want_end) = match t.kind {
            TransKind::Static1 => (true, true),
            TransKind::Static0 => (false, false),
            TransKind::Rise => (false, true),
            TransKind::Fall => (true, false),
        };
        let w = wave_eval(&expr, &t.start, &t.end);
        if w.start != want_start || w.end != want_end {
            return Err(SynthesisError {
                function: spec.name.clone(),
                message: format!(
                    "transition {i}: endpoint values {w} do not match {:?}",
                    t.kind
                ),
            });
        }
        if w.hazard {
            return Err(SynthesisError {
                function: spec.name.clone(),
                message: format!("transition {i} ({:?}) is hazardous: {w}", t.kind),
            });
        }
        // Static-1 spaces additionally need single-cube coverage (the wave
        // check implies it, but assert the Eichelberger condition
        // explicitly for clearer failures).
        if t.kind == TransKind::Static1 && !cover.single_cube_contains(&t.space) {
            return Err(SynthesisError {
                function: spec.name.clone(),
                message: format!("transition {i}: static-1 space not held by one cube"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::expand;
    use crate::spec::figure1_example;

    #[test]
    fn figure1_functions_synthesize_hazard_free() {
        let spec = figure1_example();
        let flow = expand(&spec).unwrap();
        for f in &flow.functions {
            let cover = hazard_free_cover(f).unwrap();
            assert!(!cover.is_empty(), "{} is empty", f.name);
            // ON-set fully covered.
            for c in f.on.cubes() {
                assert!(cover.covers_cube(c), "{}: {:?} uncovered", f.name, c);
            }
            // Nothing specified-OFF is covered.
            for c in f.off.cubes() {
                for m in c.minterms() {
                    assert!(!cover.eval(&m), "{}: OFF point covered", f.name);
                }
            }
        }
    }

    #[test]
    fn static1_spaces_get_single_cube() {
        let spec = figure1_example();
        let flow = expand(&spec).unwrap();
        for f in &flow.functions {
            let cover = hazard_free_cover(f).unwrap();
            for t in &f.transitions {
                if t.kind == TransKind::Static1 {
                    assert!(cover.single_cube_contains(&t.space));
                }
            }
        }
    }

    #[test]
    fn empty_on_set_is_an_error() {
        let f = SpecFunction {
            name: "z".into(),
            nvars: 2,
            on: Cover::zero(2),
            off: Cover::zero(2),
            transitions: vec![],
        };
        let err = hazard_free_cover(&f).unwrap_err();
        assert!(err.to_string().contains("empty ON-set"));
    }
}
