//! Built-in technology libraries modeled on the four libraries of the
//! paper's evaluation (Table 1 / Table 2): two commercial CMOS ASIC
//! libraries (`LSI9K`, `CMOS3`), a custom standard-cell library rich in
//! complex AOI gates (`GDT`), and a mux-based FPGA-style library
//! (`Actel`).
//!
//! The structural modeling follows the paper's findings:
//!
//! * ordinary complementary CMOS gates (NAND/NOR/AOI/OAI…) have *read-once*
//!   factored forms — every input appears exactly once — and read-once
//!   structures are logic-hazard-free, so none of them is hazardous;
//! * multiplexer cells repeat the select literal in both phases
//!   (`s·a + s'·b`), which loses the consensus term `a·b`: a static
//!   1-hazard. Muxes are the only hazardous elements of the CMOS
//!   libraries (LSI9K 12/86, CMOS3 1/30), and `GDT` has none (0/72);
//! * the Actel-style modules are *pass-transistor mux trees*: even AND-OR
//!   macros are built from muxes, so their BFFs repeat literals and
//!   roughly a third of the library is hazardous (24/84).

use crate::{Cell, Library};

/// Drive-strength variants: suffix, area multiplier, delay multiplier.
const DRIVES2: &[(&str, f64, f64)] = &[("", 1.0, 1.0), ("_X2", 1.6, 0.75)];
const DRIVES3: &[(&str, f64, f64)] = &[("", 1.0, 1.0), ("_X2", 1.6, 0.75), ("_X4", 2.5, 0.6)];

fn add_variants(lib: &mut Library, name: &str, bff: &str, delay: f64, drives: &[(&str, f64, f64)]) {
    for (suffix, area_mult, delay_mult) in drives {
        let base = Cell::from_bff(&format!("{name}{suffix}"), bff, delay * delay_mult);
        let area = base.area() * area_mult;
        lib.add(Cell::new(
            &format!("{name}{suffix}"),
            base.pins().clone(),
            base.bff().clone(),
            area,
            delay * delay_mult,
        ));
    }
}

/// Pads a library with extra inverter/buffer drive strengths until it holds
/// exactly `target` cells (commercial libraries carry many such variants).
fn pad_to(lib: &mut Library, target: usize) {
    let mut k = 8;
    while lib.len() < target {
        lib.add(Cell::from_bff(
            &format!("INV_D{k}"),
            "a'",
            0.2 / (k as f64).sqrt(),
        ));
        k += 1;
    }
    assert_eq!(lib.len(), target, "padding overshot for {}", lib.name());
}

fn add_basic_cmos(lib: &mut Library, drives: &[(&str, f64, f64)]) {
    add_variants(lib, "NAND2", "(a*b)'", 0.30, drives);
    add_variants(lib, "NAND3", "(a*b*c)'", 0.38, drives);
    add_variants(lib, "NAND4", "(a*b*c*d)'", 0.46, drives);
    add_variants(lib, "NOR2", "(a + b)'", 0.32, drives);
    add_variants(lib, "NOR3", "(a + b + c)'", 0.42, drives);
    add_variants(lib, "NOR4", "(a + b + c + d)'", 0.52, drives);
}

/// The LSI9K-modeled library: 86 elements, of which exactly the 12
/// multiplexers are hazardous (paper Table 1: "Muxes, 12 of 86, 14%").
pub fn lsi9k() -> Library {
    let mut lib = Library::new("LSI9K");
    add_variants(&mut lib, "INV", "a'", 0.20, DRIVES3);
    add_variants(&mut lib, "BUF", "(a')'", 0.30, DRIVES2);
    add_basic_cmos(&mut lib, DRIVES3);
    add_variants(&mut lib, "AND2", "(((a*b)')')", 0.40, DRIVES2);
    add_variants(&mut lib, "AND3", "(((a*b*c)')')", 0.48, DRIVES2);
    add_variants(&mut lib, "OR2", "(((a + b)')')", 0.42, DRIVES2);
    add_variants(&mut lib, "OR3", "(((a + b + c)')')", 0.52, DRIVES2);
    add_variants(&mut lib, "AOI21", "(a*b + c)'", 0.42, DRIVES2);
    add_variants(&mut lib, "AOI22", "(a*b + c*d)'", 0.48, DRIVES2);
    add_variants(&mut lib, "AOI211", "(a*b + c + d)'", 0.48, DRIVES2);
    add_variants(&mut lib, "OAI21", "((a + b)*c)'", 0.42, DRIVES2);
    add_variants(&mut lib, "OAI22", "((a + b)*(c + d))'", 0.48, DRIVES2);
    add_variants(&mut lib, "OAI211", "((a + b)*c*d)'", 0.48, DRIVES2);
    add_variants(&mut lib, "AO22", "(a*b) + (c*d)", 0.52, DRIVES2);
    add_variants(&mut lib, "OA22", "(a + b)*(c + d)", 0.52, DRIVES2);
    add_variants(&mut lib, "XOR2", "a*b' + a'*b", 0.55, DRIVES2);
    add_variants(&mut lib, "XNOR2", "a*b + a'*b'", 0.55, DRIVES2);
    add_variants(&mut lib, "NAND2B", "(a'*b)'", 0.34, DRIVES2);
    add_variants(&mut lib, "NOR2B", "(a' + b)'", 0.36, DRIVES2);
    // The 12 hazardous multiplexers (two-cube SOP structures).
    add_variants(&mut lib, "MUX2", "s*a + s'*b", 0.60, DRIVES3);
    add_variants(&mut lib, "MUX2B", "s*a' + s'*b", 0.62, DRIVES2);
    add_variants(&mut lib, "MUX2I", "(s*a + s'*b)'", 0.58, DRIVES2);
    add_variants(&mut lib, "MUX2E", "s*a*e + s'*b*e", 0.66, DRIVES2);
    add_variants(
        &mut lib,
        "MUX4",
        "t'*s'*a + t'*s*b + t*s'*c + t*s*d",
        0.82,
        &[("", 1.0, 1.0), ("_X2", 1.6, 0.75), ("_X4", 2.5, 0.6)],
    );
    pad_to(&mut lib, 86);
    lib
}

/// The CMOS3-modeled library: 30 elements, 1 hazardous mux (Table 1:
/// "Muxes, 1 of 30, 3%").
pub fn cmos3() -> Library {
    let mut lib = Library::new("CMOS3");
    add_variants(&mut lib, "INV", "a'", 0.22, DRIVES2);
    lib.add(Cell::from_bff("BUF", "(a')'", 0.32));
    add_basic_cmos(&mut lib, &[("", 1.0, 1.0)]);
    lib.add(Cell::from_bff("AND2", "((a*b)')'", 0.44));
    lib.add(Cell::from_bff("OR2", "((a + b)')'", 0.46));
    lib.add(Cell::from_bff("AOI21", "(a*b + c)'", 0.46));
    lib.add(Cell::from_bff("AOI22", "(a*b + c*d)'", 0.52));
    lib.add(Cell::from_bff("AOI221", "(a*b + c*d + e)'", 0.58));
    lib.add(Cell::from_bff("AOI222", "(a*b + c*d + e*f)'", 0.64));
    lib.add(Cell::from_bff("OAI21", "((a + b)*c)'", 0.46));
    lib.add(Cell::from_bff("OAI22", "((a + b)*(c + d))'", 0.52));
    lib.add(Cell::from_bff("OAI221", "((a + b)*(c + d)*e)'", 0.58));
    lib.add(Cell::from_bff("OAI222", "((a + b)*(c + d)*(e + f))'", 0.64));
    lib.add(Cell::from_bff("XOR2", "a*b' + a'*b", 0.58));
    lib.add(Cell::from_bff("XNOR2", "a*b + a'*b'", 0.58));
    lib.add(Cell::from_bff("NAND2B", "(a'*b)'", 0.38));
    lib.add(Cell::from_bff("NOR2B", "(a' + b)'", 0.40));
    // The single hazardous mux.
    lib.add(Cell::from_bff("MUX2", "s*a + s'*b", 0.64));
    pad_to(&mut lib, 30);
    lib
}

/// The GDT-modeled library: 72 elements, none hazardous — a custom
/// standard-cell library dominated by large complex AOI/OAI gates, whose
/// read-once complementary structures carry no logic hazards but take the
/// longest to analyze (Table 2's 16.7 s row).
pub fn gdt() -> Library {
    let mut lib = Library::new("GDT");
    add_variants(&mut lib, "INV", "a'", 0.18, DRIVES3);
    lib.add(Cell::from_bff("BUF", "(a')'", 0.28));
    add_variants(&mut lib, "NAND2", "(a*b)'", 0.28, DRIVES2);
    add_variants(&mut lib, "NAND3", "(a*b*c)'", 0.36, DRIVES2);
    add_variants(&mut lib, "NOR2", "(a + b)'", 0.30, DRIVES2);
    add_variants(&mut lib, "NOR3", "(a + b + c)'", 0.40, DRIVES2);
    let complex: &[(&str, &str)] = &[
        ("AOI21", "(a*b + c)'"),
        ("AOI22", "(a*b + c*d)'"),
        ("AOI211", "(a*b + c + d)'"),
        ("AOI221", "(a*b + c*d + e)'"),
        ("AOI222", "(a*b + c*d + e*f)'"),
        ("AOI2211", "(a*b + c*d + e + f)'"),
        ("AOI2221", "(a*b + c*d + e*f + g)'"),
        ("AOI2222", "(a*b + c*d + e*f + g*h)'"),
        ("AOI321", "(a*b*c + d*e + f)'"),
        ("OAI21", "((a + b)*c)'"),
        ("OAI22", "((a + b)*(c + d))'"),
        ("OAI211", "((a + b)*c*d)'"),
        ("OAI221", "((a + b)*(c + d)*e)'"),
        ("OAI222", "((a + b)*(c + d)*(e + f))'"),
        ("OAI2211", "((a + b)*(c + d)*e*f)'"),
        ("OAI2221", "((a + b)*(c + d)*(e + f)*g)'"),
        ("OAI2222", "((a + b)*(c + d)*(e + f)*(g + h))'"),
        ("OAI321", "((a + b + c)*(d + e)*f)'"),
    ];
    for (name, bff) in complex {
        add_variants(
            &mut lib,
            name,
            bff,
            0.5 + 0.02 * bff.len() as f64 / 10.0,
            DRIVES2,
        );
    }
    add_variants(&mut lib, "AO22", "(a*b) + (c*d)", 0.54, DRIVES2);
    add_variants(&mut lib, "OA22", "(a + b)*(c + d)", 0.54, DRIVES2);
    add_variants(&mut lib, "XOR2", "a*b' + a'*b", 0.56, DRIVES2);
    add_variants(&mut lib, "XNOR2", "a*b + a'*b'", 0.56, DRIVES2);
    lib.add(Cell::from_bff("AND2", "((a*b)')'", 0.42));
    lib.add(Cell::from_bff("OR2", "((a + b)')'", 0.44));
    pad_to(&mut lib, 72);
    lib
}

/// The Actel-Act1-modeled library: 84 elements, 24 hazardous (Table 1:
/// "AOI's, OAI's, Muxes — 24 of 84, 29%"). Every AND-OR macro is a
/// pass-transistor mux-tree expansion, so its BFF repeats literals and
/// loses consensus terms.
pub fn actel() -> Library {
    let mut lib = Library::new("Actel");
    // Hazard-free simple macros (single-literal-occurrence structures).
    add_variants(&mut lib, "INV", "a'", 0.35, DRIVES2);
    add_variants(&mut lib, "BUF", "(a')'", 0.45, DRIVES2);
    add_variants(&mut lib, "AND2", "a*b", 0.45, DRIVES2);
    add_variants(&mut lib, "AND3", "a*b*c", 0.50, DRIVES2);
    add_variants(&mut lib, "AND4", "a*b*c*d", 0.55, DRIVES2);
    add_variants(&mut lib, "NAND2", "(a*b)'", 0.45, DRIVES2);
    add_variants(&mut lib, "NAND3", "(a*b*c)'", 0.50, DRIVES2);
    add_variants(&mut lib, "NAND4", "(a*b*c*d)'", 0.55, DRIVES2);
    add_variants(&mut lib, "OR2", "a + b", 0.45, DRIVES2);
    add_variants(&mut lib, "OR3", "a + b + c", 0.50, DRIVES2);
    add_variants(&mut lib, "OR4", "a + b + c + d", 0.55, DRIVES2);
    add_variants(&mut lib, "NOR2", "(a + b)'", 0.45, DRIVES2);
    add_variants(&mut lib, "NOR3", "(a + b + c)'", 0.50, DRIVES2);
    add_variants(&mut lib, "NOR4", "(a + b + c + d)'", 0.55, DRIVES2);
    add_variants(&mut lib, "XOR2", "a*b' + a'*b", 0.60, DRIVES2);
    add_variants(&mut lib, "XNOR2", "a*b + a'*b'", 0.60, DRIVES2);
    add_variants(&mut lib, "AND2B", "a'*b", 0.47, DRIVES2);
    add_variants(&mut lib, "OR2B", "a' + b", 0.47, DRIVES2);
    add_variants(&mut lib, "AO22", "a*b + c*d", 0.58, DRIVES2);
    add_variants(&mut lib, "OA22", "(a + b)*(c + d)", 0.58, DRIVES2);
    // Hazardous mux-tree macros (12 shapes × 2 drives = 24).
    let hazardous: &[(&str, &str, f64)] = &[
        // AND-OR macros as mux expansions: AO1 = ab + c built as
        // mux(a; c, b + c) = a(b + c) + a'c — repeats a, loses prime c.
        ("AO1", "a*(b + c) + a'*c", 0.55),
        ("AO2", "a*(b + c + d) + a'*d", 0.58),
        ("AO3", "a*(b*c + d) + a'*d", 0.58),
        // OR-AND macros: OA1 = (a + c)·b as mux(a; b, c·b).
        ("OA1", "a*b + a'*(c*b)", 0.55),
        ("OA2", "a*(b*c) + a'*(d*b*c)", 0.58),
        ("OA3", "a*b + a'*(c + d)*b", 0.58),
        // Inverting forms.
        ("AOI1", "(a*(b + c) + a'*c)'", 0.55),
        ("AOI2", "(a*(b + c + d) + a'*d)'", 0.58),
        ("OAI1", "(a*b + a'*(c*b))'", 0.55),
        ("OAI2", "(a*b + a'*(c + d)*b)'", 0.58),
        // Plain muxes.
        ("MX2", "s*a + s'*b", 0.55),
        ("MX4", "t'*(s*b + s'*a) + t*(s*d + s'*c)", 0.70),
    ];
    for (name, bff, delay) in hazardous {
        add_variants(&mut lib, name, bff, *delay, DRIVES2);
    }
    pad_to(&mut lib, 84);
    lib
}

/// All four built-in libraries, unannotated, in the paper's Table 1 order.
pub fn all_libraries() -> Vec<Library> {
    vec![lsi9k(), cmos3(), gdt(), actel()]
}

/// Names of the built-in libraries, lowercase, in the paper's Table 1
/// order (the spelling [`library`] accepts).
pub const LIBRARY_NAMES: [&str; 4] = ["lsi9k", "cmos3", "gdt", "actel"];

/// Looks up a built-in library by its lowercase name (see
/// [`LIBRARY_NAMES`]); `None` for anything else.
pub fn library(name: &str) -> Option<Library> {
    match name {
        "lsi9k" => Some(lsi9k()),
        "cmos3" => Some(cmos3()),
        "gdt" => Some(gdt()),
        "actel" => Some(actel()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        // Library, total elements, hazardous elements — the shape of the
        // paper's Table 1.
        let expect = [
            ("LSI9K", 86, 12),
            ("CMOS3", 30, 1),
            ("GDT", 72, 0),
            ("Actel", 84, 24),
        ];
        for (name, total, hazardous) in expect {
            let mut lib = match name {
                "LSI9K" => lsi9k(),
                "CMOS3" => cmos3(),
                "GDT" => gdt(),
                _ => actel(),
            };
            assert_eq!(lib.len(), total, "{name} total");
            lib.annotate_hazards();
            let found = lib.hazardous_cells();
            assert_eq!(
                found.len(),
                hazardous,
                "{name} hazardous: {:?}",
                found.iter().map(|c| c.name()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn lsi9k_hazardous_cells_are_all_muxes() {
        let mut lib = lsi9k();
        lib.annotate_hazards();
        for cell in lib.hazardous_cells() {
            assert!(cell.name().starts_with("MUX"), "{} not a mux", cell.name());
        }
    }

    #[test]
    fn actel_macros_compute_expected_functions() {
        let lib = actel();
        // AO1 = ab + c.
        let ao1 = lib.cell("AO1").unwrap();
        let tt = ao1.truth_table();
        for m in 0..8usize {
            let (a, b, c) = (m & 1 == 1, m & 2 == 2, m & 4 == 4);
            assert_eq!(tt.get(m), (a && b) || c, "AO1 at {m}");
        }
    }

    #[test]
    fn all_libraries_have_unique_cell_names() {
        for lib in all_libraries() {
            // Library::add already panics on duplicates; this exercises
            // construction of every builtin.
            assert!(!lib.is_empty());
        }
    }
}
