//! Cube and sum-of-products algebra for hazard-aware logic synthesis.
//!
//! This crate implements the bit-vector cube representation of
//! *Siegel, De Micheli, Dill — "Automatic Technology Mapping for Generalized
//! Fundamental-Mode Asynchronous Designs"* (Stanford CSL-TR-93-580, DAC'93),
//! §4.1.1 and Figure 5: each product term is a pair of `USED`/`PHASE` bit
//! vectors, cube adjacency is the single-set-bit test on
//! `CONFLICTS = (USED₁ & USED₂) & (PHASE₁ ⊕ PHASE₂)`, and the consensus of
//! adjacent cubes is formed by OR-ing the vectors and masking the conflict
//! bit.
//!
//! On top of the cube type, [`Cover`] provides the semantic operations the
//! hazard-analysis and technology-mapping layers need: tautology checking,
//! implicant tests, prime generation by iterated consensus, irredundant
//! covers and complementation. Covers deliberately preserve their list
//! structure — a redundant cube is *meaningful* for hazard behavior — so no
//! operation simplifies implicitly.
//!
//! # Examples
//!
//! ```
//! use asyncmap_cube::{Cover, Cube, VarTable};
//!
//! let vars = VarTable::from_names(["a", "b", "c"]);
//! let f = Cover::parse("ab + a'c", &vars)?;
//!
//! // The consensus cube bc is an implicant, but no single gate covers it:
//! // the classic static-1 hazard configuration.
//! let bc = Cube::parse("bc", &vars)?;
//! assert!(f.covers_cube(&bc));
//! assert!(!f.single_cube_contains(&bc));
//! # Ok::<(), asyncmap_cube::ParseSopError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod cover;
#[allow(clippy::module_inception)]
mod cube;
mod parse;
pub mod simd;
mod var;

pub use bits::{Bits, IterOnes};
pub use cover::{Cover, DisplayCover};
pub use cube::{Cube, DisplayCube, Minterms, Phase};
pub use parse::{parse_cube_letters, parse_cube_tokens, ParseSopError};
pub use simd::U64x4;
pub use var::{VarId, VarTable};
