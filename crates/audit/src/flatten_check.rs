//! Replay of hazard-preserving flatten collapse traces
//! ([`FlattenTrace`]) against the [`FlatSop`] they certify.
//!
//! Obligations:
//!
//! 1. the traced normal form really is an NNF (complements only over
//!    variables) and computes the same function as the source;
//! 2. the claimed product count matches both the produced SOP and an
//!    independent arithmetic replay of the distribution over the NNF
//!    shape (sums under OR, products under AND) — catching silently
//!    dropped products, which is exactly how absorption or idempotence
//!    would manifest;
//! 3. every vacuous product really clashes (some variable in both
//!    phases), with its clash list honest;
//! 4. the SOP (proper cubes ∪ vacuous products) computes the source
//!    function;
//! 5. on supports small enough to sweep, the full SOP has *identical*
//!    static hazard behavior to the source on every transition — Unger's
//!    Theorem 4.3 promises preservation, not mere containment.

use asyncmap_bff::{Expr, FlatSop, FlattenTrace};
use asyncmap_cube::{Bits, Phase};
use asyncmap_hazard::{wave_eval, ORACLE_VAR_LIMIT};

use crate::equiv::{compact_onto, prove_equal, union_support, EquivProof};
use crate::monotone::product_estimate;
use crate::report::{AuditReport, Severity};

fn is_nnf(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::Not(inner) => matches!(**inner, Expr::Var(_)),
        Expr::And(es) | Expr::Or(es) => es.iter().all(is_nnf),
    }
}

/// The full distribution image as an expression: the proper cubes *plus*
/// the vacuous products, which carry the static-0 hazard behavior the
/// cover alone cannot represent.
fn image_expr(flat: &FlatSop) -> Expr {
    let mut terms: Vec<Expr> = flat
        .cover
        .cubes()
        .iter()
        .map(|c| Expr::and(c.literals().map(|(v, p)| Expr::literal(v, p)).collect()))
        .collect();
    for vac in &flat.vacuous {
        terms.push(Expr::and(
            vac.literals
                .iter()
                .map(|&(v, p)| Expr::literal(v, p))
                .collect(),
        ));
    }
    Expr::or(terms)
}

/// Replays one flatten certificate. `nvars` is the variable space the
/// flatten ran over.
pub fn check_flatten(flat: &FlatSop, trace: &FlattenTrace, nvars: usize) -> AuditReport {
    let mut report = AuditReport::default();
    report.counters.flatten_traces = 1;
    let path = "flatten".to_owned();

    if !is_nnf(&trace.nnf) {
        report.push(
            Severity::Error,
            "flatten.nnf-shape",
            path.clone(),
            "traced normal form complements a compound subexpression".to_owned(),
        );
        return report;
    }
    let (eq, proof) = prove_equal(&trace.source, &trace.nnf, nvars);
    count_proof(&mut report, proof);
    if !eq {
        report.push(
            Severity::Error,
            "flatten.nnf-divergence",
            path.clone(),
            "traced normal form computes a different function than the source".to_owned(),
        );
    }

    let produced = flat.cover.len() + flat.vacuous.len();
    let replayed = product_estimate(&trace.nnf);
    if trace.products != produced || replayed != produced as u64 {
        report.push(
            Severity::Error,
            "flatten.count-mismatch",
            path.clone(),
            format!(
                "certificate claims {} product(s), SOP has {}, independent replay expects {}",
                trace.products, produced, replayed
            ),
        );
    }

    for (i, vac) in flat.vacuous.iter().enumerate() {
        let honest = !vac.clashing.is_empty()
            && vac.clashing.iter().all(|v| {
                vac.literals.contains(&(*v, Phase::Pos)) && vac.literals.contains(&(*v, Phase::Neg))
            });
        if !honest {
            report.push(
                Severity::Error,
                "flatten.vacuous-clash",
                format!("{path}:vacuous{i}"),
                "vacuous product's clash evidence does not match its literals".to_owned(),
            );
        }
    }

    let image = image_expr(flat);
    let (eq, proof) = prove_equal(&trace.source, &image, nvars);
    count_proof(&mut report, proof);
    if !eq {
        report.push(
            Severity::Error,
            "flatten.not-equivalent",
            path.clone(),
            "flattened SOP computes a different function than the source".to_owned(),
        );
        return report;
    }

    // Static hazard fidelity: sweep every transition of the compacted
    // support when small enough (Theorem 4.3 — the laws preserve static
    // hazard behavior exactly, in both directions).
    let support = union_support(&trace.source, &image);
    let k = support.len();
    if k <= ORACLE_VAR_LIMIT {
        report.counters.hazard_rechecks += 1;
        let src = compact_onto(&trace.source, &support);
        let img = compact_onto(&image, &support);
        'sweep: for a in 0..(1usize << k) {
            for b in 0..(1usize << k) {
                if a == b {
                    continue;
                }
                let from = index_bits(k, a);
                let to = index_bits(k, b);
                let sw = wave_eval(&src, &from, &to);
                let iw = wave_eval(&img, &from, &to);
                if sw.is_static_hazard() != iw.is_static_hazard() {
                    report.push(
                        Severity::Error,
                        "flatten.static-hazard-divergence",
                        path.clone(),
                        format!(
                            "transition {a:#b} → {b:#b}: source {} a static hazard, SOP {}",
                            if sw.is_static_hazard() {
                                "has"
                            } else {
                                "lacks"
                            },
                            if iw.is_static_hazard() {
                                "has one"
                            } else {
                                "does not"
                            },
                        ),
                    );
                    break 'sweep;
                }
            }
        }
    } else {
        report.counters.hazard_partial += 1;
        report.push(
            Severity::Info,
            "flatten.hazard-partial",
            path,
            format!("support of {k} variables is too wide for the static-hazard sweep"),
        );
    }
    report
}

fn count_proof(report: &mut AuditReport, proof: EquivProof) {
    match proof {
        EquivProof::Truth => report.counters.truth_proofs += 1,
        EquivProof::Bdd => report.counters.bdd_proofs += 1,
    }
}

fn index_bits(nvars: usize, m: usize) -> Bits {
    let mut bits = Bits::new(nvars);
    for v in 0..nvars {
        bits.set(v, (m >> v) & 1 == 1);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_bff::flatten_traced;
    use asyncmap_cube::VarTable;

    fn traced(text: &str) -> (FlatSop, FlattenTrace, usize) {
        let mut vars = VarTable::new();
        let e = Expr::parse(text, &mut vars).unwrap();
        let (flat, trace) = flatten_traced(&e, vars.len());
        (flat, trace, vars.len())
    }

    #[test]
    fn honest_traces_are_clean() {
        for text in [
            "(w + y')*(x + y)",
            "(w + y')*(x*y + y'*z)",
            "a*b + a'*c + b*c",
            "(a + b*(c + d'))' + a*d",
        ] {
            let (flat, trace, nvars) = traced(text);
            let report = check_flatten(&flat, &trace, nvars);
            assert!(report.is_clean(), "{text}: {}", report.render());
        }
    }

    #[test]
    fn dropped_vacuous_product_is_caught() {
        // Deleting the vacuous y'y product (what a non-hazard-preserving
        // flatten would do) breaks the count replay.
        let (mut flat, trace, nvars) = traced("(w + y')*(x + y)");
        assert_eq!(flat.vacuous.len(), 1);
        flat.vacuous.clear();
        let report = check_flatten(&flat, &trace, nvars);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "flatten.count-mismatch"));
    }

    #[test]
    fn forged_nnf_is_caught() {
        let (flat, mut trace, nvars) = traced("(w + y')*(x + y)");
        trace.nnf = trace.source.clone().not();
        let report = check_flatten(&flat, &trace, nvars);
        assert!(!report.is_clean());
    }

    #[test]
    fn forged_clash_evidence_is_caught() {
        let (mut flat, trace, nvars) = traced("(w + y')*(x + y)");
        flat.vacuous[0].clashing.clear();
        let report = check_flatten(&flat, &trace, nvars);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "flatten.vacuous-clash"));
    }
}
