//! Bit-level evaluation kernels for the whole-design analyzer.
//!
//! Two evaluators share the module:
//!
//! * a **word-parallel** functional evaluator — up to 64 primary-input
//!   assignments per pass, one `u64` lane per assignment — used by the
//!   interior-point race sweeps ([`eval_design_packed`]); and
//! * a **waveform** evaluator that propagates arbitrary 8-valued
//!   [`Wave`] classes through a cell's factored form
//!   ([`wave_of_expr`]), the primitive behind the cross-cone
//!   interference walk. Unlike [`asyncmap_hazard::wave_eval`], the leaf
//!   classes are supplied by the caller, so an upstream cone's (possibly
//!   hazardous) output wave can be fed into a downstream cone's pins.
//!
//! Both kernels are pure bit manipulation over caller-owned slices, which
//! keeps them cheap enough for Miri to interpret — they are part of the
//! `asyncmap-fma` Miri gate in CI.

use asyncmap_bff::Expr;
use asyncmap_core::MappedDesign;
use asyncmap_cube::Bits;
use asyncmap_hazard::Wave;
use asyncmap_library::Library;
use std::collections::HashMap;

/// Evaluates `expr` over word-valued pins: bit `j` of the result is the
/// value of `expr` at assignment `j`, where bit `j` of `pins[v]` is the
/// value of variable `v` at assignment `j`.
///
/// Bits beyond the caller's assignment count hold garbage; the caller
/// masks.
pub fn eval_expr_words(expr: &Expr, pins: &[u64]) -> u64 {
    match expr {
        Expr::Const(b) => {
            if *b {
                !0
            } else {
                0
            }
        }
        Expr::Var(v) => pins[v.index()],
        Expr::Not(e) => !eval_expr_words(e, pins),
        Expr::And(es) => es.iter().fold(!0, |acc, e| acc & eval_expr_words(e, pins)),
        Expr::Or(es) => es.iter().fold(0, |acc, e| acc | eval_expr_words(e, pins)),
    }
}

/// Evaluates `expr` in the 8-valued waveform algebra with caller-supplied
/// leaf waves, using the same fold order as
/// [`asyncmap_hazard::wave_eval`] so both oracles agree on every
/// expression.
pub fn wave_of_expr(expr: &Expr, pins: &[Wave]) -> Wave {
    match expr {
        Expr::Const(b) => {
            if *b {
                Wave::C1
            } else {
                Wave::C0
            }
        }
        Expr::Var(v) => pins[v.index()],
        Expr::Not(e) => wave_of_expr(e, pins).not(),
        Expr::And(es) => es
            .iter()
            .map(|e| wave_of_expr(e, pins))
            .fold(Wave::C1, Wave::and),
        Expr::Or(es) => es
            .iter()
            .map(|e| wave_of_expr(e, pins))
            .fold(Wave::C0, Wave::or),
    }
}

/// Evaluates the mapped netlist (through the chosen cells, like
/// [`MappedDesign::eval_mapped`]) at every assignment in `points`,
/// 64 assignments per pass.
///
/// Returns one row per primary output in declaration order; bit `j` of
/// word `j / 64` in a row is the output's value at `points[j]`.
///
/// # Panics
///
/// Panics if a point's width differs from the primary-input count, or if
/// an instance reads an undriven signal (structurally unsound designs are
/// rejected before any kernel runs).
pub fn eval_design_packed(
    design: &MappedDesign,
    library: &Library,
    points: &[Bits],
) -> Vec<Vec<u64>> {
    let net = &design.subject;
    let num_outputs = net.outputs().len();
    let words = points.len().div_ceil(64);
    let mut rows = vec![vec![0u64; words]; num_outputs];

    // Covers in topological order of their roots, once for all chunks.
    let mut order: Vec<usize> = (0..design.covers.len()).collect();
    order.sort_by_key(|&i| design.covers[i].root);

    let mut values: HashMap<asyncmap_network::SignalId, u64> = HashMap::new();
    let mut pins: Vec<u64> = Vec::new();
    for (w, chunk) in points.chunks(64).enumerate() {
        values.clear();
        for (i, &s) in net.inputs().iter().enumerate() {
            let mut word = 0u64;
            for (j, p) in chunk.iter().enumerate() {
                assert_eq!(p.len(), net.inputs().len(), "point width mismatch");
                if p.get(i) {
                    word |= 1 << j;
                }
            }
            values.insert(s, word);
        }
        for &c in &order {
            for inst in &design.covers[c].instances {
                let cell = &library.cells()[inst.cell_index];
                pins.clear();
                for sig in &inst.inputs {
                    pins.push(
                        *values
                            .get(sig)
                            .unwrap_or_else(|| panic!("undriven signal {sig} in mapped netlist")),
                    );
                }
                values.insert(inst.output, eval_expr_words(cell.bff(), &pins));
            }
        }
        for (o, (_, s)) in net.outputs().iter().enumerate() {
            rows[o][w] = values.get(s).copied().unwrap_or(0);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarId;

    fn v(i: usize) -> Expr {
        Expr::Var(VarId(i))
    }

    #[test]
    fn words_agree_with_scalar_eval() {
        // f = (a & b) | !c over all 8 assignments in one word.
        let f = Expr::Or(vec![Expr::And(vec![v(0), v(1)]), Expr::Not(Box::new(v(2)))]);
        let mut pins = [0u64; 3];
        for j in 0..8usize {
            for (i, pin) in pins.iter_mut().enumerate() {
                if j >> i & 1 == 1 {
                    *pin |= 1 << j;
                }
            }
        }
        let word = eval_expr_words(&f, &pins);
        for j in 0..8usize {
            let (a, b, c) = (j & 1 == 1, j >> 1 & 1 == 1, j >> 2 & 1 == 1);
            assert_eq!(word >> j & 1 == 1, (a && b) || !c, "assignment {j}");
        }
    }

    #[test]
    fn wave_matches_wave_eval_on_endpoint_leaves() {
        // With monotone leaf classes derived from (from, to) endpoints the
        // caller-supplied-wave evaluator must agree with the hazard
        // crate's closed evaluator on every transition.
        let f = Expr::Or(vec![
            Expr::And(vec![v(0), v(1)]),
            Expr::And(vec![Expr::Not(Box::new(v(0))), v(2)]),
            Expr::And(vec![v(1), v(2)]),
        ]);
        let n = 3;
        for a in 0..1u32 << n {
            for b in 0..1u32 << n {
                let from = Bits::from_words_fn(n, |_| u64::from(a));
                let to = Bits::from_words_fn(n, |_| u64::from(b));
                let pins: Vec<Wave> = (0..n)
                    .map(|i| match (from.get(i), to.get(i)) {
                        (false, false) => Wave::C0,
                        (true, true) => Wave::C1,
                        (false, true) => Wave::RISE,
                        (true, false) => Wave::FALL,
                    })
                    .collect();
                assert_eq!(
                    wave_of_expr(&f, &pins),
                    asyncmap_hazard::wave_eval(&f, &from, &to),
                    "transition {a:03b} -> {b:03b}"
                );
            }
        }
    }

    #[test]
    fn hazardous_pin_wave_propagates_through_and() {
        let f = Expr::And(vec![v(0), v(1)]);
        let glitchy_one = Wave {
            start: true,
            end: true,
            hazard: true,
        };
        let w = wave_of_expr(&f, &[glitchy_one, Wave::C1]);
        assert!(w.hazard, "1* & 1 must stay glitch-capable");
        // A constant-0 side input masks the glitch.
        let w = wave_of_expr(&f, &[glitchy_one, Wave::C0]);
        assert!(!w.hazard, "1* & 0 is a solid 0");
    }
}
