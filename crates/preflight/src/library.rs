//! Library-side qualification: declared-vs-derived cross-checks, class
//! structure, hazard characterization and mapability coverage.

use crate::PreflightReport;
use asyncmap_bff::Expr;
use asyncmap_core::truth::{canon6, depends6, full_mask, truth6_of, Canon6};
use asyncmap_cube::{VarId, VarTable};
use asyncmap_genlib::{parse_sop, GenlibLibrary, PinPhase};
use asyncmap_library::{Cell, Library};
use asyncmap_report::Severity;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Class analysis and hazard characterization are skipped for cells wider
/// than this (the packed-table machinery covers ≤ 6 inputs; the paper's
/// libraries top out at 5).
const MAX_CLASS_INPUTS: usize = 6;

/// The realizability key of a cell or cluster function: support width
/// plus its P-class-with-phase. The matcher accepts a (cell, cluster)
/// pair iff the cluster's support-projected truth table equals the cell's
/// under some pin permutation — which holds iff these keys are equal.
type ClassKey = (usize, u64, bool);

fn class_key(truth: u64, n: usize) -> ClassKey {
    let Canon6 { canon, phase } = canon6(truth, n);
    (n, canon, phase)
}

/// `truth` restricted to `n` vars, with every variable in the support.
fn has_full_support(truth: u64, n: usize) -> bool {
    (0..n).all(|v| depends6(truth, n, v))
}

/// Checks a converted [`Library`]: vacuous pins, duplicate and dominated
/// cells, base-class coverage gaps, ≤4-input P-class coverage stats and
/// per-cell hazard characterization.
pub fn preflight_library(library: &Library) -> PreflightReport {
    let mut report = PreflightReport::default();
    report.counters.cells = library.len();
    if library.is_empty() {
        report.push(
            Severity::Error,
            "library.empty",
            format!("library {}", library.name()),
            "library has no cells".into(),
        );
        return report;
    }

    // Pass 1: per-cell structure, collecting class keys of usable cells.
    let mut by_class: HashMap<ClassKey, Vec<usize>> = HashMap::new();
    for (i, cell) in library.cells().iter().enumerate() {
        let n = cell.num_inputs();
        if n > MAX_CLASS_INPUTS {
            report.push(
                Severity::Info,
                "library.wide-cell",
                format!("cell {}", cell.name()),
                format!("{n} inputs exceed the {MAX_CLASS_INPUTS}-input class analysis; skipped"),
            );
            continue;
        }
        let truth = truth6_of(cell.bff(), n);
        let vacuous: Vec<&str> = (0..n)
            .filter(|&v| !depends6(truth, n, v))
            .map(|v| cell.pins().name(VarId(v)))
            .collect();
        if !vacuous.is_empty() {
            report.push(
                Severity::Warning,
                "library.vacuous-pin",
                format!("cell {}", cell.name()),
                format!(
                    "function does not depend on pin(s) {}: clusters are \
                     support-projected, so this cell can never match",
                    vacuous.join(", ")
                ),
            );
            continue;
        }
        by_class.entry(class_key(truth, n)).or_default().push(i);

        let hazards = cell.compute_hazards();
        if !hazards.is_hazard_free() {
            report.counters.hazardous_cells += 1;
            report.push(
                Severity::Info,
                "library.hazardous-cell",
                format!("cell {}", cell.name()),
                hazards.summary(),
            );
        }
    }

    // Pass 2: duplicates and dominated cells within each class.
    for members in by_class.values() {
        if members.len() < 2 {
            continue;
        }
        let names: Vec<&str> = members.iter().map(|&i| library.cells()[i].name()).collect();
        report.push(
            Severity::Info,
            "library.duplicate-cell",
            format!("cells {}", names.join(", ")),
            "same function up to pin permutation; the mapper keeps the cheapest".into(),
        );
        for &a in members {
            let ca = &library.cells()[a];
            for &b in members {
                if a == b {
                    continue;
                }
                let cb = &library.cells()[b];
                let no_worse = cb.area() <= ca.area() && cb.delay() <= ca.delay();
                let strictly = cb.area() < ca.area() || cb.delay() < ca.delay();
                if no_worse && strictly {
                    // Info, not warning: commercial libraries legitimately
                    // carry dominated drive variants for count/load realism.
                    report.push(
                        Severity::Info,
                        "library.dominated-cell",
                        format!("cell {}", ca.name()),
                        format!(
                            "same class as {} at no better area ({} vs {}) or delay \
                             ({} vs {}); it will never be selected",
                            cb.name(),
                            ca.area(),
                            cb.area(),
                            ca.delay(),
                            cb.delay()
                        ),
                    );
                    break;
                }
            }
        }
    }

    // Pass 3: base-class coverage. The hazard-preserving decomposition
    // emits only 2-input AND/OR gates, inverters and buffers, so these
    // four classes are what single-gate (trivial) clusters need.
    for (name, expr, n) in base_gates() {
        let key = class_key(truth6_of(&expr, n), n);
        if !by_class.contains_key(&key) {
            report.push(
                Severity::Warning,
                "library.coverage-gap",
                format!("library {}", library.name()),
                format!(
                    "no cell realizes the {name} class: any cone root whose \
                     sampled cuts all need it is unmappable"
                ),
            );
        }
    }

    // Pass 4: P-class coverage over all full-support functions of ≤ 4
    // inputs (cached; the 4-input sweep canonicalizes 65 536 tables once).
    for (k, classes) in all_classes_up_to_4().iter().enumerate() {
        let k = k + 1;
        let realized = classes
            .iter()
            .filter(|&&(canon, phase)| by_class.contains_key(&(k, canon, phase)))
            .count();
        report.push(
            Severity::Info,
            "library.coverage",
            format!("library {}", library.name()),
            format!(
                "{realized} of {} full-support {k}-input P-classes realizable",
                classes.len()
            ),
        );
    }

    report
}

/// The four gate kinds the hazard-preserving decomposition emits, as
/// (name, expression, arity).
fn base_gates() -> [(&'static str, Expr, usize); 4] {
    let gate = |text: &str| {
        let mut vars = VarTable::new();
        Expr::parse(text, &mut vars).expect("fixed text")
    };
    [
        ("buffer", gate("a"), 1),
        ("inverter", gate("a'"), 1),
        ("2-input AND", gate("a*b"), 2),
        ("2-input OR", gate("a + b"), 2),
    ]
}

/// `result[k-1]` = canonical `(canon, phase)` pairs of every full-support
/// function on exactly `k` inputs, for `k` in 1..=4.
fn all_classes_up_to_4() -> &'static [Vec<(u64, bool)>; 4] {
    static CLASSES: OnceLock<[Vec<(u64, bool)>; 4]> = OnceLock::new();
    CLASSES.get_or_init(|| {
        std::array::from_fn(|i| {
            let k = i + 1;
            let mut set: Vec<(u64, bool)> = (0..=full_mask(k))
                .filter(|&t| has_full_support(t, k))
                .map(|t| {
                    let c = canon6(t, k);
                    (c.canon, c.phase)
                })
                .collect();
            set.sort_unstable();
            set.dedup();
            set
        })
    })
}

/// Checks a parsed genlib library: declared-SOP-vs-derived-function and
/// declared-phase-vs-unateness cross-checks, skipped-statement notes,
/// then all [`preflight_library`] checks on the conversion. Returns the
/// converted [`Library`] so callers qualify and map the same object.
pub fn preflight_genlib(genlib: &GenlibLibrary) -> (PreflightReport, Library) {
    let mut report = PreflightReport::default();
    for skipped in &genlib.skipped {
        report.push(
            Severity::Info,
            "library.skipped-cell",
            format!("cell {}", skipped.name),
            format!("line {}: {} — not converted", skipped.line, skipped.reason),
        );
    }
    let library = genlib.to_library();
    for cell in &genlib.cells {
        let Some(converted) = library.cell(&cell.name) else {
            continue;
        };
        check_declared_function(cell, converted, &mut report);
        check_declared_phases(cell, &mut report);
    }
    let mut merged = preflight_library(&library);
    // Library checks first, cross-checks second; render order is sorted
    // anyway, but counters should reflect one pass over the cells.
    merged.merge(report);
    (merged, library)
}

/// Re-derives the cell function from the *declared* SOP text and compares
/// it against the converted cell's truth table. A disagreement means the
/// parsed structure was corrupted (or the parser miscompiled the
/// expression) — mapping with it would silently change logic.
fn check_declared_function(
    cell: &asyncmap_genlib::GenlibCell,
    converted: &Cell,
    report: &mut PreflightReport,
) {
    let n = converted.num_inputs();
    if n > MAX_CLASS_INPUTS {
        return;
    }
    let mut vars = VarTable::new();
    let reparsed = match parse_sop(&cell.sop, &mut vars) {
        Ok(expr) => expr,
        Err(e) => {
            report.push(
                Severity::Error,
                "library.function-mismatch",
                format!("cell {}", cell.name),
                format!("declared SOP `{}` no longer parses: {e}", cell.sop),
            );
            return;
        }
    };
    // Align the reparse's variable order with the cell's pin order.
    let mut pin_of: Vec<usize> = Vec::with_capacity(vars.len());
    for (_, name) in vars.iter() {
        match cell.pins.lookup(name) {
            Some(v) => pin_of.push(v.index()),
            None => {
                report.push(
                    Severity::Error,
                    "library.function-mismatch",
                    format!("cell {}", cell.name),
                    format!("declared SOP uses `{name}`, which is not a pin of the cell"),
                );
                return;
            }
        }
    }
    let declared = truth6_of(&asyncmap_core::instantiate(&reparsed, &pin_of), n);
    let derived = truth6_of(converted.bff(), n);
    if declared != derived {
        report.push(
            Severity::Error,
            "library.function-mismatch",
            format!("cell {}", cell.name),
            format!(
                "declared SOP `{}` disagrees with the cell's derived function \
                 (truth {declared:#x} vs {derived:#x} over {n} pin(s))",
                cell.sop
            ),
        );
    }
}

/// Checks each declared `PIN` phase against the unateness the function
/// actually has in that pin. An `INV` pin of a positive-unate input (or
/// any declared phase on a binate input) contradicts the declaration —
/// the same class of defect as a wrong SOP, hence the same finding code.
fn check_declared_phases(cell: &asyncmap_genlib::GenlibCell, report: &mut PreflightReport) {
    let n = cell.pins.len();
    if n > MAX_CLASS_INPUTS {
        return;
    }
    let truth = truth6_of(&cell.expr, n);
    for (v, attrs) in cell.pin_attrs.iter().enumerate() {
        let (mut pos_unate, mut neg_unate) = (true, true);
        for m in 0..1u64 << n {
            if m >> v & 1 == 1 {
                continue;
            }
            let f0 = truth >> m & 1;
            let f1 = truth >> (m | 1 << v) & 1;
            if f0 == 1 && f1 == 0 {
                pos_unate = false;
            }
            if f0 == 0 && f1 == 1 {
                neg_unate = false;
            }
        }
        let pin = cell.pins.name(asyncmap_cube::VarId(v));
        let contradiction = match attrs.phase {
            PinPhase::NonInv if !pos_unate => {
                Some("NONINV, but the function is not positive-unate")
            }
            PinPhase::Inv if !neg_unate => Some("INV, but the function is not negative-unate"),
            _ => None,
        };
        if let Some(why) = contradiction {
            report.push(
                Severity::Error,
                "library.function-mismatch",
                format!("cell {}", cell.name),
                format!("pin {pin} is declared {why} in it"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_genlib::parse_genlib;
    use asyncmap_library::builtin;

    #[test]
    fn builtin_libraries_have_no_errors() {
        for lib in builtin::all_libraries() {
            let report = preflight_library(&lib);
            assert_eq!(
                report.num_errors(),
                0,
                "{}: {}",
                lib.name(),
                report.render()
            );
            // Every builtin covers the four base classes: no gap warnings.
            assert!(
                !report
                    .findings
                    .iter()
                    .any(|f| f.code == "library.coverage-gap"),
                "{}: {}",
                lib.name(),
                report.render()
            );
        }
    }

    #[test]
    fn class_counts_match_known_values() {
        // Pure P-classes (permutation only — matching never complements):
        // 2 on one input (buffer, inverter), 8 on two (AND, OR, NAND,
        // NOR, XOR, XNOR, a·b', a+b'). Assert the cached sweep agrees
        // with an independent recount by brute-force pairwise equivalence.
        let classes = all_classes_up_to_4();
        assert_eq!(classes[0].len(), 2);
        assert_eq!(classes[1].len(), 8);
        for k in 1..=2 {
            let mut reps: Vec<u64> = Vec::new();
            'next: for t in 0..=full_mask(k) {
                if !has_full_support(t, k) {
                    continue;
                }
                for &r in &reps {
                    if same_class(t, r, k) {
                        continue 'next;
                    }
                }
                reps.push(t);
            }
            assert_eq!(classes[k - 1].len(), reps.len(), "k={k}");
        }
    }

    /// Brute-force permutation-only equivalence for tiny arity.
    fn same_class(a: u64, b: u64, n: usize) -> bool {
        let mut perms: Vec<Vec<usize>> = Vec::new();
        permute((0..n).collect(), &mut Vec::new(), &mut perms);
        perms
            .iter()
            .any(|p| asyncmap_core::truth::apply_perm6(a, p, n) == b)
    }

    fn permute(rest: Vec<usize>, acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(acc.clone());
        }
        for (i, &v) in rest.iter().enumerate() {
            let mut r = rest.clone();
            r.remove(i);
            acc.push(v);
            permute(r, acc, out);
            acc.pop();
        }
    }

    #[test]
    fn vacuous_pin_and_dominated_cell_are_flagged() {
        let mut lib = Library::new("t");
        lib.add(Cell::from_bff("GOOD", "a*b", 1.0));
        lib.add(Cell::from_bff("SLOW", "a*b", 9.0));
        let report = preflight_library(&lib);
        assert!(report
            .notes
            .iter()
            .any(|f| f.code == "library.dominated-cell" && f.path.contains("SLOW")));

        let mut lib2 = Library::new("t2");
        // `b` is mentioned as a pin but the function ignores it.
        lib2.add(Cell::new(
            "VAC",
            VarTable::from_names(["a", "b"]),
            Expr::Var(VarId(0)),
            1.0,
            1.0,
        ));
        let report2 = preflight_library(&lib2);
        assert!(report2
            .findings
            .iter()
            .any(|f| f.code == "library.vacuous-pin"));
    }

    #[test]
    fn empty_library_is_an_error() {
        assert_eq!(preflight_library(&Library::new("void")).num_errors(), 1);
    }

    const GOOD: &str = "
GATE INV 1 O=!a;    PIN a INV 1 999 1 0 1 0
GATE BUF 2 O=a;     PIN a NONINV 1 999 1 0 1 0
GATE AND2 3 O=a*b;  PIN * NONINV 1 999 1 0 1 0
GATE OR2 3 O=a+b;   PIN * NONINV 1 999 1 0 1 0
";

    #[test]
    fn clean_genlib_qualifies() {
        let gl = parse_genlib(GOOD, "good").unwrap();
        let (report, lib) = preflight_genlib(&gl);
        assert_eq!(report.num_errors(), 0, "{}", report.render());
        assert_eq!(lib.len(), 4);
    }

    #[test]
    fn perturbed_sop_is_a_function_mismatch() {
        // Qualification soundness: corrupt the declared SOP of a parsed
        // cell; the cross-check must catch the disagreement.
        let mut gl = parse_genlib(GOOD, "good").unwrap();
        gl.cells[2].sop = "a + b".into(); // was a*b
        let (report, _) = preflight_genlib(&gl);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "library.function-mismatch"
                && f.severity == Severity::Error
                && f.path.contains("AND2")));
    }

    #[test]
    fn contradictory_pin_phase_is_a_function_mismatch() {
        let gl = parse_genlib("GATE BADINV 1 O=!a; PIN a NONINV 1 999 1 0 1 0\n", "bad").unwrap();
        let (report, _) = preflight_genlib(&gl);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "library.function-mismatch" && f.path.contains("BADINV")));
    }

    #[test]
    fn contradictory_pin_phase_on_wider_cells_is_caught_too() {
        // Three pins, so the unateness sweep runs over 8 minterms of a
        // 256-bit-mask-wide table — a regression guard for the minterm
        // range (it is 2^n, not the truth-table bit mask).
        let gl = parse_genlib(
            "GATE BADNAND3 1 O=!(a*b*c); PIN * NONINV 1 999 1 0 1 0\n\
             GATE AND3 1 O=a*b*c; PIN * NONINV 1 999 1 0 1 0\n",
            "bad",
        )
        .unwrap();
        let (report, _) = preflight_genlib(&gl);
        let flagged: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.code == "library.function-mismatch")
            .collect();
        assert!(flagged.iter().all(|f| f.path.contains("BADNAND3")));
        assert_eq!(flagged.len(), 3, "{}", report.render());
    }

    #[test]
    fn dropping_the_inverter_class_is_a_coverage_gap() {
        let gl = parse_genlib(GOOD, "noinv").unwrap();
        let mut lib = Library::new("noinv");
        for c in &gl.cells {
            if c.name != "INV" {
                lib.add(Cell::new(
                    &c.name,
                    c.pins.clone(),
                    c.expr.clone(),
                    c.area,
                    1.0,
                ));
            }
        }
        let report = preflight_library(&lib);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "library.coverage-gap" && f.message.contains("inverter")));
    }
}
